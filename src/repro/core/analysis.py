"""Wasabi's high-level analysis API (paper §2.3, Table 2).

An analysis subclasses :class:`Analysis` and overrides any of the 23 hooks.
Wasabi inspects which hooks are overridden to drive *selective
instrumentation* (§2.4.2): only instructions with a matching hook are
instrumented.

Faithful type mapping (paper Figure 5): i32/f32/f64 arrive as Python
``int``/``float``; i64 values cross the host boundary as two i32 halves
(§2.4.6) and are re-joined by the runtime into a Python ``int`` in signed
two's-complement range (the analogue of the paper's long.js objects);
conditions arrive as ``bool``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True, order=True)
class Location:
    """A code location: function index and *original* instruction index.

    Instruction indices always refer to the uninstrumented binary, so an
    analysis can correlate observations with the original code.
    """

    func: int
    instr: int

    def __str__(self) -> str:
        return f"{self.func}:{self.instr}"


@dataclass(frozen=True)
class BranchTarget:
    """A statically resolved branch destination (paper §2.4.4).

    ``label`` is the raw relative label from the binary; ``location`` is the
    absolute location of the next instruction executed if the branch is
    taken, resolved at instrumentation time via the abstract control stack.
    """

    label: int
    location: Location


@dataclass(frozen=True)
class MemArg:
    """Effective address and static offset of a memory access.

    ``addr`` is the dynamic base address operand; the accessed address is
    ``addr + offset``.
    """

    addr: int
    offset: int


#: The block types reported by the begin/end hooks.
BLOCK_TYPES = ("function", "block", "loop", "if", "else")


class Analysis:
    """Base class for Wasabi analyses: override any subset of the 23 hooks.

    Hook signatures mirror the paper's Table 2; every hook receives the
    :class:`Location` of the original instruction first.
    """

    # -- stack manipulation ----------------------------------------------------

    def const_(self, location: Location, value: int | float) -> None:
        """A ``t.const`` instruction pushed ``value``."""

    def drop(self, location: Location, value: int | float) -> None:
        """A ``drop`` discarded ``value``."""

    def select(self, location: Location, condition: bool,
               first: int | float, second: int | float) -> None:
        """A ``select`` chose between ``first`` and ``second``."""

    # -- operations ------------------------------------------------------------

    def unary(self, location: Location, op: str,
              input: int | float, result: int | float) -> None:
        """A unary operation ``op`` (e.g. ``f32.abs``, ``i32.eqz``) executed."""

    def binary(self, location: Location, op: str, first: int | float,
               second: int | float, result: int | float) -> None:
        """A binary operation ``op`` (e.g. ``i32.add``) executed."""

    # -- register and memory access ----------------------------------------------

    def local(self, location: Location, op: str, index: int,
              value: int | float) -> None:
        """``get_local``/``set_local``/``tee_local`` touched local ``index``."""

    def global_(self, location: Location, op: str, index: int,
                value: int | float) -> None:
        """``get_global``/``set_global`` touched global ``index``."""

    def load(self, location: Location, op: str, memarg: MemArg,
             value: int | float) -> None:
        """A load ``op`` read ``value`` from ``memarg.addr + memarg.offset``."""

    def store(self, location: Location, op: str, memarg: MemArg,
              value: int | float) -> None:
        """A store ``op`` wrote ``value`` to ``memarg.addr + memarg.offset``."""

    def memory_size(self, location: Location, current_size_pages: int) -> None:
        """``memory.size`` returned the current size in pages."""

    def memory_grow(self, location: Location, delta: int,
                    previous_size_pages: int) -> None:
        """``memory.grow`` by ``delta`` pages returned ``previous_size_pages``
        (0xFFFFFFFF means the grow failed)."""

    # -- function calls -------------------------------------------------------------

    def call_pre(self, location: Location, func: int,
                 args: Sequence[int | float],
                 table_index: int | None) -> None:
        """About to call function index ``func`` with ``args``.

        ``table_index`` is None for direct calls; for indirect calls it is
        the dynamic table index, and ``func`` the resolved callee (or -1 if
        the entry would trap).
        """

    def call_post(self, location: Location,
                  results: Sequence[int | float]) -> None:
        """A call returned ``results``."""

    def return_(self, location: Location,
                results: Sequence[int | float]) -> None:
        """The current function returns ``results`` (explicit ``return`` or
        the implicit return at the function's final ``end``)."""

    # -- control flow ------------------------------------------------------------------

    def br(self, location: Location, target: BranchTarget) -> None:
        """An unconditional branch is about to be taken."""

    def br_if(self, location: Location, target: BranchTarget,
              condition: bool) -> None:
        """A conditional branch evaluated ``condition``."""

    def br_table(self, location: Location, table: Sequence[BranchTarget],
                 default_target: BranchTarget, table_index: int) -> None:
        """A multi-way branch selected ``table_index``."""

    def if_(self, location: Location, condition: bool) -> None:
        """An ``if`` evaluated ``condition``."""

    # -- blocks ------------------------------------------------------------------------

    def begin(self, location: Location, block_type: str) -> None:
        """Entered a block; ``block_type`` in :data:`BLOCK_TYPES`."""

    def end(self, location: Location, block_type: str,
            begin_location: Location) -> None:
        """Left a block whose begin is at ``begin_location``."""

    # -- miscellaneous -------------------------------------------------------------------

    def nop(self, location: Location) -> None:
        """A ``nop`` executed."""

    def unreachable(self, location: Location) -> None:
        """An ``unreachable`` is about to trap."""

    def start(self) -> None:
        """The module's start function is about to run."""

    def used_groups(self) -> frozenset[str]:
        """Hook groups this analysis implements (see :func:`used_groups`).

        :class:`~repro.core.session.AnalysisSession` calls this when no
        explicit ``groups`` are given, automating the selective
        instrumentation the paper suggests in §2.4.2.
        """
        return used_groups(self)


#: Maps high-level hook method names to instrumentation hook groups.
HOOK_METHOD_TO_GROUP = {
    "const_": "const",
    "drop": "drop",
    "select": "select",
    "unary": "unary",
    "binary": "binary",
    "local": "local",
    "global_": "global",
    "load": "load",
    "store": "store",
    "memory_size": "memory_size",
    "memory_grow": "memory_grow",
    "call_pre": "call",
    "call_post": "call",
    "return_": "return",
    "br": "br",
    "br_if": "br_if",
    "br_table": "br_table",
    "if_": "if",
    "begin": "begin",
    "end": "end",
    "nop": "nop",
    "unreachable": "unreachable",
}

#: All instrumentable hook groups (the x-axis of the paper's Figures 8/9).
ALL_GROUPS = frozenset(HOOK_METHOD_TO_GROUP.values())


def used_groups(analysis: Analysis) -> frozenset[str]:
    """Hook groups an analysis actually implements (selective instrumentation).

    A hook is "implemented" when the method is overridden relative to
    :class:`Analysis` — either in the subclass or as an instance attribute
    (as :class:`repro.core.composite.CompositeAnalysis` does).
    """
    groups: set[str] = set()
    base_methods = {method: getattr(Analysis, method)
                    for method in HOOK_METHOD_TO_GROUP}
    for method, group in HOOK_METHOD_TO_GROUP.items():
        impl = getattr(analysis, method)
        if getattr(impl, "__func__", impl) is not base_methods[method]:
            groups.add(group)
    return frozenset(groups)
