"""Instruction and branch coverage (paper Table 4, rows 3-4).

Instruction coverage records which instructions executed at least once;
branch coverage records, per conditional location, which directions were
taken (cf. the paper's Figure 7).
"""

from __future__ import annotations

from collections import defaultdict

from ..core.analysis import Analysis, Location
from ..core.metadata import ModuleInfo


class InstructionCoverage(Analysis):
    """Marks every executed instruction location. Uses all hooks."""

    def __init__(self):
        self.covered: set[Location] = set()

    def _mark(self, location: Location) -> None:
        if location.instr >= 0:  # skip the synthetic function-begin location
            self.covered.add(location)

    def const_(self, location, value): self._mark(location)
    def drop(self, location, value): self._mark(location)
    def select(self, location, condition, first, second): self._mark(location)
    def unary(self, location, op, input, result): self._mark(location)
    def binary(self, location, op, first, second, result): self._mark(location)
    def local(self, location, op, index, value): self._mark(location)
    def global_(self, location, op, index, value): self._mark(location)
    def load(self, location, op, memarg, value): self._mark(location)
    def store(self, location, op, memarg, value): self._mark(location)
    def memory_size(self, location, size): self._mark(location)
    def memory_grow(self, location, delta, previous): self._mark(location)
    def call_pre(self, location, func, args, table_index): self._mark(location)
    def return_(self, location, results): self._mark(location)
    def br(self, location, target): self._mark(location)
    def br_if(self, location, target, condition): self._mark(location)
    def br_table(self, location, table, default, index): self._mark(location)
    def if_(self, location, condition): self._mark(location)
    def begin(self, location, block_type): self._mark(location)
    def end(self, location, block_type, begin_location): self._mark(location)
    def nop(self, location): self._mark(location)
    def unreachable(self, location): self._mark(location)

    # reporting ----------------------------------------------------------------

    def covered_in(self, func_idx: int) -> int:
        return sum(1 for loc in self.covered if loc.func == func_idx)

    def ratio(self, module_info: ModuleInfo) -> float:
        """Fraction of instructions (over defined functions) executed."""
        total = sum(f.instr_count for f in module_info.functions if not f.imported)
        return len(self.covered) / total if total else 0.0


class BranchCoverage(Analysis):
    """Records taken branch directions, as in the paper's Figure 7.

    Implements exactly the four hooks of the figure: ``if_``, ``br_if``,
    ``br_table``, and ``select``.
    """

    def __init__(self):
        #: per conditional location, the set of observed outcomes
        self.branches: dict[Location, set[int]] = defaultdict(set)

    def _add(self, location: Location, branch: int) -> None:
        self.branches[location].add(branch)

    def if_(self, location, condition):
        self._add(location, int(condition))

    def br_if(self, location, target, condition):
        self._add(location, int(condition))

    def br_table(self, location, table, default_target, table_index):
        self._add(location, table_index)

    def select(self, location, condition, first, second):
        self._add(location, int(condition))

    # reporting -----------------------------------------------------------------

    def fully_covered(self) -> set[Location]:
        """Two-way conditionals where both directions were observed."""
        return {loc for loc, outcomes in self.branches.items()
                if {0, 1} <= outcomes or len(outcomes) >= 2}

    def partially_covered(self) -> set[Location]:
        return {loc for loc, outcomes in self.branches.items()
                if len(outcomes) == 1}

    def ratio(self) -> float:
        if not self.branches:
            return 0.0
        return len(self.fully_covered()) / len(self.branches)
