"""Memory access tracing for cache-behaviour analysis (paper §4.2).

Records every load/store of a PolyBench kernel (11 lines of analysis in
the paper) and does the offline part: stride histograms that reveal
row-major-friendly vs column-striding access patterns — the classic use
case the paper cites ("detect cache-unfriendly access patterns").

Run:  python examples/memory_profile.py
"""

from collections import Counter

from repro import analyze
from repro.analyses import MemoryTracer
from repro.eval import polybench_workloads


def profile(kernel_name):
    workload = polybench_workloads([kernel_name])[0]
    tracer = MemoryTracer()
    session = analyze(workload.module(), tracer, linker=workload.linker())
    session.invoke("main")

    reads = sum(1 for a in tracer.trace if a.kind == "load")
    writes = len(tracer.trace) - reads
    print(f"{kernel_name}:")
    print(f"  accesses: {len(tracer.trace)} ({reads} loads / {writes} stores)")
    print(f"  unique addresses: {tracer.unique_addresses()}")

    strides = Counter(tracer.stride_histogram())
    total = sum(strides.values())
    sequential = strides.get(8, 0) + strides.get(0, 0) + strides.get(-8, 0)
    print(f"  sequential strides (0/±8 bytes): {sequential / total:.0%}")
    top = ", ".join(f"{stride:+d}B x{count}"
                    for stride, count in strides.most_common(5))
    print(f"  top strides: {top}")
    print(f"  hottest addresses: {tracer.hot_addresses(3)}")
    print()
    return tracer


def main():
    # gemm walks B column-by-column inside the inner loop -> large strides;
    # jacobi-1d is a sliding window -> almost perfectly sequential
    profile("gemm")
    profile("jacobi-1d")


if __name__ == "__main__":
    main()
