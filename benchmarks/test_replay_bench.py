"""Record/replay overhead floor: the recorder must be pay-as-you-go.

Two claims are pinned here, on the Figure 9 PolyBench fast subset:

1. **The no-recorder path is (near-)free.** A machine built without
   ``replay=`` pays exactly one hoisted ``replay is not None`` test per
   host-boundary crossing (host calls; plus clock reads when metered) and
   nothing per ordinary instruction. The guard's unit cost is measured
   directly (timeit differencing) and multiplied by the exact number of
   host calls per run, yielding a deterministic upper-bound estimate of
   the disabled-path overhead. Floor: <= 2%.

2. **Recording is cheap.** A run under a live :class:`Recorder` (every
   host call logged with exact-codec args/results) stays within 1.5x of
   the unrecorded run.

Results are recorded in ``benchmarks/results/BENCH_replay.json``.
"""

from __future__ import annotations

import json
import statistics
import time
import timeit

from repro.eval import POLYBENCH_FAST_SUBSET, polybench_workloads
from repro.interp import Machine, Recorder, Replayer, replay_linker

from conftest import full_run


def _guard_cost_seconds() -> float:
    """Per-event cost of the disabled-path guard, ``replay is not None``."""
    n = 2_000_000
    guarded = min(timeit.repeat("if replay is not None: pass",
                                globals={"replay": None},
                                number=n, repeat=7)) / n
    empty = min(timeit.repeat("pass", number=n, repeat=7)) / n
    return max(guarded - empty, 0.0)


def _time_workload(workload, repeats, record):
    """Best-of-``repeats`` invoke time, host-call count, and one recording."""
    module = workload.module()
    best, host_calls, recorder = float("inf"), 0, None
    for _ in range(repeats):
        this_recorder = Recorder() if record else None
        machine = Machine(replay=this_recorder)
        instance = machine.instantiate(module, workload.linker())
        start = time.perf_counter()
        instance.invoke(workload.entry, workload.args)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, recorder = elapsed, this_recorder
        if this_recorder is not None:
            host_calls = sum(1 for e in this_recorder.entries
                             if e["kind"] == "host_call")
    return best, host_calls, recorder


def test_replay_overhead(benchmark, results_dir):
    repeats = 5 if full_run() else 3
    guard_s = _guard_cost_seconds()
    workloads = polybench_workloads(POLYBENCH_FAST_SUBSET)

    rows = []
    for workload in workloads:
        off_seconds, _, _ = _time_workload(workload, repeats, record=False)
        rec_seconds, host_calls, _ = _time_workload(workload, repeats,
                                                    record=True)
        disabled_overhead = host_calls * guard_s / off_seconds
        rows.append({
            "name": workload.name,
            "off_seconds": off_seconds,
            "recording_seconds": rec_seconds,
            "recording_overhead": rec_seconds / off_seconds,
            "host_calls": host_calls,
            "disabled_overhead": disabled_overhead,
        })

    payload = {
        "guard_ns": guard_s * 1e9,
        "workloads": rows,
        "geomean_recording_overhead": statistics.geometric_mean(
            r["recording_overhead"] for r in rows),
        "max_disabled_overhead": max(r["disabled_overhead"] for r in rows),
    }
    path = results_dir / "BENCH_replay.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for r in rows:
        print(f"{r['name']:16s} off={r['off_seconds']:.4f}s "
              f"recording={r['recording_overhead']:.3f}x "
              f"host_calls={r['host_calls']} "
              f"disabled~{r['disabled_overhead']:.5%}")
    print(f"guard cost {payload['guard_ns']:.2f} ns/event; "
          f"geomean recording {payload['geomean_recording_overhead']:.3f}x; "
          f"max disabled {payload['max_disabled_overhead']:.4%} "
          f"[recorded in {path}]")

    # (1) the ISSUE floor: no-recorder path costs <= 2% on every kernel
    assert payload["max_disabled_overhead"] <= 0.02, payload
    # (2) recording stays within 1.5x of the unrecorded run
    assert payload["geomean_recording_overhead"] <= 1.5, payload

    # the pytest-benchmark number: recorded gemm on the predecoded engine
    gemm = polybench_workloads(["gemm"])[0]
    benchmark.pedantic(lambda: _time_workload(gemm, 1, record=True),
                       rounds=1, iterations=1)


def test_recording_captures_on_bench_path(results_dir):
    """The recorded log actually replays the bench workload — guarding
    against a silently disconnected recorder making claim (2) vacuous."""
    workload = polybench_workloads(["trisolv"])[0]
    module = workload.module()
    recorder = Recorder()
    machine = Machine(replay=recorder)
    instance = machine.instantiate(module, workload.linker([]))
    results = instance.invoke(workload.entry, workload.args)
    assert any(e["kind"] == "host_call" for e in recorder.entries)

    replayer = Replayer(recorder.entries)
    machine2 = Machine(replay=replayer)
    instance2 = machine2.instantiate(module, replay_linker(module))
    assert instance2.invoke(workload.entry, workload.args) == results
    replayer.finish()
