"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Telemetry for a dynamic-analysis framework has to obey the same contract as
the instrumentation it observes (paper §4.3): the observed system must
behave as if the observer were absent. The concrete shape follows the
Prometheus data model — monotonically increasing :class:`Counter` values,
point-in-time :class:`Gauge` values, and :class:`Histogram` observations
binned into *fixed* upper-bound buckets (no per-observation allocation, one
``bisect`` per observe) — because that model renders directly to the text
exposition format and survives JSON round-trips losslessly.

Metrics are identified by ``(name, labels)`` pairs, e.g.
``repro_hook_latency_seconds{hook="binary_i32_add"}`` — labels are how
per-monomorphized-hook and per-opcode-class series share one metric name.

Nothing in this module reads a clock; time enters only through histogram
observations made by callers (see :mod:`repro.obs.telemetry`), which keeps
every metric deterministic under an injected clock.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default buckets for sub-millisecond dispatch latencies (seconds).
HOOK_LATENCY_BUCKETS: tuple[float, ...] = (
    2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 1e-3, 1e-2, 1e-1,
)

#: Default buckets for pipeline-stage durations (seconds).
STAGE_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default buckets for service request latencies (seconds): pings land in
#: the sub-millisecond range, supervised runs anywhere up to the request
#: timeout, so the range is wider and denser in the middle than the
#: pipeline-stage buckets.
SERVE_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

Labels = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, str] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def _render_labels(labels: Labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "labels", "help", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Labels = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def set(self, value: int | float) -> None:
        """Set the absolute value (for folding externally kept raw totals)."""
        self.value = value

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (pages, fuel left, queue depth)."""

    __slots__ = ("name", "labels", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Observations binned into fixed upper-bound buckets.

    ``buckets`` are inclusive upper bounds in increasing order; one implicit
    overflow bucket (``+Inf``) catches everything beyond the last bound.
    ``counts[i]`` is the number of observations in bucket *i* (NOT
    cumulative; the Prometheus-style cumulative view is computed at render
    time), so :meth:`observe` is one bisect and two adds.
    """

    __slots__ = ("name", "labels", "help", "buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, name: str, buckets: tuple[float, ...],
                 labels: Labels = (), help: str = ""):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} needs sorted, non-empty buckets")
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        the q-th observation falls in; the last finite bound for overflow)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                return self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
        return self.buckets[-1]

    def as_dict(self) -> dict:
        return {
            "name": self.name, "labels": dict(self.labels),
            "buckets": list(self.buckets), "counts": list(self.counts),
            "sum": self.sum, "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create registry of metrics keyed by ``(name, labels)``.

    Re-requesting an existing metric returns the same object, so charge
    sites can resolve their metric once and hold the reference (the
    telemetry layer's hoisted-guard discipline). Registering the same name
    with a different metric kind is an error.
    """

    def __init__(self):
        self._metrics: dict[tuple[str, Labels], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}

    def _get_or_create(self, cls, name: str, labels: dict[str, str] | None,
                       help: str, **kwargs):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name} already registered as a {metric.kind}")
            return metric
        known = self._kinds.get(name)
        if known is not None and known != cls.kind:
            raise ValueError(f"metric {name} already registered as a {known}")
        metric = cls(name, labels=key[1], help=help, **kwargs)
        self._metrics[key] = metric
        self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, labels: dict[str, str] | None = None,
                help: str = "") -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, labels: dict[str, str] | None = None,
              help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(self, name: str, labels: dict[str, str] | None = None,
                  buckets: tuple[float, ...] = STAGE_SECONDS_BUCKETS,
                  help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, labels, help,
                                   buckets=buckets)

    def __iter__(self):
        return iter(sorted(self._metrics.values(),
                           key=lambda m: (m.name, m.labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str,
            labels: dict[str, str] | None = None) -> Counter | Gauge | Histogram | None:
        return self._metrics.get((name, _labels_key(labels)))

    def series(self, name: str) -> list:
        """All metrics sharing ``name`` (one per label set)."""
        return [m for m in self if m.name == name]

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready form, grouped by kind (the ``metrics`` artifact)."""
        out: dict[str, list[dict]] = {"counters": [], "gauges": [], "histograms": []}
        for metric in self:
            out[metric.kind + "s"].append(metric.as_dict())
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        """Inverse of :meth:`as_dict` (exporter round-trip support)."""
        registry = cls()
        for entry in payload.get("counters", ()):
            registry.counter(entry["name"], entry["labels"]).set(entry["value"])
        for entry in payload.get("gauges", ()):
            registry.gauge(entry["name"], entry["labels"]).set(entry["value"])
        for entry in payload.get("histograms", ()):
            hist = registry.histogram(entry["name"], entry["labels"],
                                      buckets=tuple(entry["buckets"]))
            hist.counts = list(entry["counts"])
            hist.sum = entry["sum"]
            hist.count = entry["count"]
        return registry

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in self:
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for i, bound in enumerate(metric.buckets):
                    cumulative += metric.counts[i]
                    le = _render_labels(metric.labels, (("le", _format_bound(bound)),))
                    lines.append(f"{metric.name}_bucket{le} {cumulative}")
                le = _render_labels(metric.labels, (("le", "+Inf"),))
                lines.append(f"{metric.name}_bucket{le} {metric.count}")
                labels = _render_labels(metric.labels)
                lines.append(f"{metric.name}_sum{labels} {_format_value(metric.sum)}")
                lines.append(f"{metric.name}_count{labels} {metric.count}")
            else:
                labels = _render_labels(metric.labels)
                lines.append(f"{metric.name}{labels} {_format_value(metric.value)}")
        return "\n".join(lines) + "\n"


def _format_bound(bound: float) -> str:
    return repr(bound)


def _format_value(value: int | float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse a text exposition back into ``{sample_name{labels}: value}``.

    A deliberately small parser — enough for the exporter round-trip tests
    and for scraping our own output; not a general Prometheus client.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed exposition line: {line!r}")
        samples[name_part] = float(value_part)
    return samples
