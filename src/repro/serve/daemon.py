"""The service daemon: a unix-socket front end over the worker pool.

``repro serve`` builds a :class:`~repro.serve.pool.WorkerPool` and hands
it to a :class:`ServeDaemon`; clients (:mod:`repro.serve.client`, the
``--serve`` CLI flags, the CI smoke job) connect per request, send one
JSON line, and read one back. Connection handling is a thread per
request — the pool below provides the isolation and backpressure (a
request blocks until a worker frees up), so the daemon itself stays a
thin, crash-tolerant adapter:

* a client that disconnects mid-request only loses its own response;
* a malformed line gets a structured error response, not a dropped
  connection or a daemon traceback;
* pool-level failures (kills, breaker, degradation) are translated into
  the same ``status`` taxonomy the CLI exits with, so remote and local
  runs triage identically.

Observability surface (this is where a *running* daemon stops being a
black box):

* the ``stats`` op answers a JSON snapshot (schema
  ``repro.serve-stats/1``): pool counters, kill taxonomy, breaker state,
  cache hit/miss/evict, queue depth, plus daemon-side uptime and per-op
  latency summaries;
* the ``metrics`` op answers the Prometheus text exposition of the
  daemon's registry, with pool counters folded idempotently on every
  scrape — two consecutive scrapes of an idle daemon are byte-identical
  (scrape ops themselves are deliberately *not* counted, and uptime
  lives only in ``stats``);
* ``--metrics-port`` starts a localhost HTTP listener serving
  ``GET /metrics`` and ``GET /stats`` for real scrapers;
* a request carrying a ``trace`` context gets daemon-side spans
  (``serve_op``, plus the pool's ``queue_wait``/``supervised_execute``)
  parented under the client's request span and returned in the
  response's ``spans`` — the cross-process trace propagation path.

Every pool-routed request is timed into ``repro_serve_op_seconds{op=…}``
regardless of tracing, so latency histograms are always scrapeable.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from ..obs.log import get_logger
from ..obs.metrics import SERVE_LATENCY_BUCKETS
from ..obs.spans import SpanContext, Tracer
from ..obs.telemetry import Telemetry
from ..wasm.errors import BreakerOpen, WasmError, WorkerKilled
from . import wire
from .pool import WorkerPool

#: Schema tag on every ``stats`` response (bump on breaking change).
STATS_SCHEMA = "repro.serve-stats/1"


class ServeDaemon:
    """Accept loop + per-connection request handling over a unix socket."""

    def __init__(self, socket_path: str | Path, pool: WorkerPool,
                 telemetry=None, logger=None,
                 metrics_port: int | None = None):
        self.socket_path = str(socket_path)
        self.pool = pool
        # the scrape surface must exist even when the caller brought no
        # sink, so a bare daemon is never a black box
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.logger = logger if logger is not None else get_logger("repro.serve")
        self.metrics_port = metrics_port
        self._listener: socket.socket | None = None
        self._metrics_server: ThreadingHTTPServer | None = None
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started_monotonic: float | None = None
        self._started_unix: float | None = None
        self._metrics_lock = threading.Lock()
        self._op_hists: dict[str, object] = {}
        self._op_counters: dict[tuple[str, str], object] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServeDaemon":
        """Bind and listen.

        A pre-existing socket file is probed before it is touched: if a
        daemon still answers on it, starting here would silently steal its
        path (clients would reach whichever daemon bound last), so that is
        a :class:`~repro.wasm.errors.ServiceError`. Only a *stale* socket —
        one nothing accepts on, left by a killed daemon — is removed. A
        non-socket file at the path is never deleted.
        """
        path = Path(self.socket_path)
        if path.exists():
            self._remove_stale_socket(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(64)
        listener.settimeout(0.25)
        self._listener = listener
        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()
        if self.metrics_port is not None:
            self._start_metrics_server(self.metrics_port)
        self.logger.info("serve_started", socket=self.socket_path,
                         workers=self.pool.config.workers,
                         metrics_port=self.metrics_port)
        return self

    def _remove_stale_socket(self, path: Path) -> None:
        """Unlink ``path`` iff it is a socket nothing is accepting on."""
        import stat

        from ..wasm.errors import ServiceError
        if not stat.S_ISSOCK(path.lstat().st_mode):
            raise ServiceError(
                f"{path} exists and is not a socket; refusing to replace it")
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(str(path))
        except (ConnectionRefusedError, socket.timeout, OSError):
            # nothing answered: a stale file from a killed daemon
            self.logger.info("stale_socket_removed", socket=str(path))
            path.unlink(missing_ok=True)
        else:
            raise ServiceError(
                f"a daemon is already serving on {path}; stop it first "
                f"(or pick another --socket)")
        finally:
            probe.close()

    def stop(self) -> None:
        """Stop accepting, drain handler threads, close the pool.

        Idempotent: a signal handler and a ``finally`` block may both call
        it; only the first pass tears down and logs.
        """
        first = not self._stop.is_set()
        self._stop.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            with contextlib.suppress(OSError):
                listener.close()
        server, self._metrics_server = self._metrics_server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self.pool.close()
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        if first:
            self.logger.info("serve_stopped", socket=self.socket_path)

    def serve_forever(self) -> None:
        """Run the accept loop until :meth:`stop` (or EOF via signal)."""
        assert self._listener is not None, "call start() first"
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: shutting down
            thread = threading.Thread(target=self._handle_connection,
                                      args=(conn,), daemon=True,
                                      name="repro-serve-conn")
            thread.start()
            self._threads.append(thread)
            self._threads = [t for t in self._threads if t.is_alive()]

    # -- one connection --------------------------------------------------------

    def _handle_connection(self, conn: socket.socket) -> None:
        with contextlib.suppress(OSError, BrokenPipeError):
            with conn:
                conn.settimeout(600.0)
                with conn.makefile("rb") as reader:
                    line = wire.read_line(reader)
                if not line.strip():
                    return
                response = self._respond(line)
                conn.sendall(wire.dumps(response))

    def _respond(self, line: bytes) -> dict:
        try:
            request = wire.loads(line)
        except wire.WireError as exc:
            self.logger.warning("serve_bad_request", detail=str(exc))
            return {"ok": False, "status": 2,
                    "error": {"type": "WireError", "message": str(exc)}}
        kind = request.get("kind")
        if kind == "stats":
            return self._stats_response()
        if kind == "metrics":
            return self._metrics_response()
        if kind == "shutdown_daemon":
            # respond first; the stop happens off-thread so the client
            # gets its acknowledgement before the listener dies
            threading.Thread(target=self.stop, daemon=True).start()
            return {"ok": True, "stopping": True}
        return self._respond_pool(kind, request)

    def _respond_pool(self, kind, request: dict) -> dict:
        """Route one request into the pool: latency accounting + tracing."""
        tracer = None
        trace = request.pop("trace", None)
        if trace is not None:
            try:
                tracer = Tracer(context=SpanContext.from_dict(trace),
                                process="daemon")
            except (KeyError, TypeError):
                tracer = None
        op = kind if isinstance(kind, str) else "unknown"
        span = tracer.span("serve_op", op=op) if tracer is not None else None
        if span is not None:
            span.__enter__()
            # workers parent their spans under the daemon's serve_op span
            request["trace"] = tracer.current_context().as_dict()
        started = time.perf_counter()
        outcome = "ok"
        try:
            timeout = request.pop("request_timeout", None)
            response = self.pool.submit(request, timeout=timeout,
                                        tracer=tracer)
            if not response.get("ok", False):
                outcome = "error"
        except BreakerOpen as exc:
            outcome = "breaker"
            response = {"ok": False, "status": 9,
                        "error": {"type": "BreakerOpen", "message": str(exc)}}
        except WorkerKilled as exc:
            outcome = "killed"
            response = {"ok": False, "status": 8,
                        "error": {"type": "WorkerKilled",
                                  "message": str(exc),
                                  "kill_class": exc.kill_class}}
            bundle = getattr(exc, "bundle", None)
            if bundle:
                response["bundle"] = bundle
        except WasmError as exc:
            from ..cli import exit_status
            outcome = "error"
            response = {"ok": False, "status": exit_status(exc),
                        "error": {"type": type(exc).__name__,
                                  "message": str(exc)}}
        except Exception as exc:
            outcome = "error"
            response = {"ok": False, "status": 1,
                        "error": {"type": type(exc).__name__,
                                  "message": str(exc)}}
        finally:
            elapsed = time.perf_counter() - started
            if span is not None:
                span.__exit__(None, None, None)
            self._observe_op(op, outcome, elapsed)
        if tracer is not None:
            # worker spans already ride in response["spans"]; append ours
            response.setdefault("spans", []).extend(
                s.as_dict() for s in tracer.spans)
        return response

    # -- the scrape surface ------------------------------------------------------

    def _observe_op(self, op: str, outcome: str, elapsed: float) -> None:
        with self._metrics_lock:
            hist = self._op_hists.get(op)
            if hist is None:
                hist = self.telemetry.registry.histogram(
                    "repro_serve_op_seconds", labels={"op": op},
                    buckets=SERVE_LATENCY_BUCKETS,
                    help="daemon-side request latency per op")
                self._op_hists[op] = hist
            hist.observe(elapsed)
            counter = self._op_counters.get((op, outcome))
            if counter is None:
                counter = self.telemetry.registry.counter(
                    "repro_serve_op_total",
                    labels={"op": op, "outcome": outcome},
                    help="daemon requests per op and outcome")
                self._op_counters[(op, outcome)] = counter
            counter.inc()

    def uptime_seconds(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def _stats_response(self) -> dict:
        # fold on every scrape (idempotent: counters are *set*), so the
        # surface never depends on a shutdown-time fold
        self.pool.fold_into_telemetry(self.telemetry)
        with self._metrics_lock:
            ops: dict[str, dict] = {}
            for op, hist in sorted(self._op_hists.items()):
                outcomes = {out: counter.value
                            for (hop, out), counter in
                            sorted(self._op_counters.items())
                            if hop == op}
                ops[op] = {
                    "count": hist.count,
                    "total_seconds": round(hist.sum, 6),
                    "mean_seconds": round(hist.mean, 6),
                    "p50_seconds": hist.quantile(0.5),
                    "p95_seconds": hist.quantile(0.95),
                    "outcomes": outcomes,
                }
        daemon = {
            "pid": os.getpid(),
            "socket": self.socket_path,
            "uptime_seconds": self.uptime_seconds(),
            "started_unix": self._started_unix,
            "ops": ops,
        }
        if self.metrics_port is not None:
            daemon["metrics_port"] = self.metrics_port
        return {"ok": True, "stats_schema": STATS_SCHEMA,
                "stats": self.pool.stats(), "daemon": daemon,
                "degraded": self.pool.degraded}

    def _metrics_response(self) -> dict:
        return {"ok": True, "metrics": self.render_metrics()}

    def render_metrics(self) -> str:
        """Prometheus text exposition of the daemon's registry.

        Pool counters are folded first (idempotently — they are *set*
        from the raw totals, never incremented at fold time), so every
        scrape sees current values and repeated scrapes of an idle
        daemon render byte-identical text.
        """
        self.pool.fold_into_telemetry(self.telemetry)
        with self._metrics_lock:
            return self.telemetry.snapshot().to_prometheus()

    # -- the HTTP listener (real scrapers) ----------------------------------------

    def _start_metrics_server(self, port: int) -> None:
        daemon = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                if path == "/metrics":
                    body = daemon.render_metrics().encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/stats":
                    body = (json.dumps(daemon._stats_response(), indent=2)
                            + "\n").encode("utf-8")
                    ctype = "application/json"
                else:
                    self.send_error(404, "try /metrics or /stats")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # the daemon has its own logger
                pass

        server = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        server.daemon_threads = True
        self._metrics_server = server
        self.metrics_port = server.server_address[1]  # resolve port 0
        thread = threading.Thread(target=server.serve_forever, daemon=True,
                                  name="repro-serve-metrics")
        thread.start()
