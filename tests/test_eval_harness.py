"""The evaluation harness itself: sweeps, reports, and the hook matrix."""

import pytest

from repro.core.analysis import ALL_GROUPS, used_groups
from repro.eval import (FIGURE_GROUPS, OverheadReport, SizeReport,
                        baseline_runtime, instrumented_runtime,
                        make_full_analysis, make_group_analysis,
                        overhead_sweep, polybench_workloads, render_fig8,
                        render_fig9, render_table, render_table5, size_sweep,
                        time_instrumentation)
from repro.eval.faithfulness import run_instrumented, run_original
from repro.workloads.polybench import compile_kernel


class TestHooksMatrix:
    def test_figure_groups_cover_all(self):
        assert set(FIGURE_GROUPS) == set(ALL_GROUPS)
        assert len(FIGURE_GROUPS) == 21

    @pytest.mark.parametrize("group", FIGURE_GROUPS)
    def test_group_analysis_implements_exactly_one_group(self, group):
        analysis = make_group_analysis(group)
        assert used_groups(analysis) == frozenset({group})

    def test_full_analysis_implements_everything(self):
        assert used_groups(make_full_analysis()) == frozenset(ALL_GROUPS)

    def test_group_analyses_are_noops(self):
        analysis = make_group_analysis("binary")
        analysis.binary(None, "i32.add", 1, 2, 3)  # must not raise


class TestSizeSweep:
    def test_sweep_shape(self):
        module = compile_kernel("trisolv")
        reports = size_sweep("trisolv", module)
        assert len(reports) == len(FIGURE_GROUPS) + 1
        assert reports[-1].config == "all"
        all_report = reports[-1]
        assert all_report.increase_percent > \
            max(r.increase_percent for r in reports[:-1])

    def test_size_report_math(self):
        report = SizeReport("x", "all", 100, 150, 3)
        assert report.increase_percent == 50.0


class TestTimingAndOverhead:
    def test_timing_report(self):
        report = time_instrumentation("gemm", compile_kernel("gemm"), repeats=2)
        assert report.mean_seconds > 0
        assert report.throughput_mb_per_s > 0
        assert report.repeats == 2

    def test_baseline_and_instrumented(self):
        workload = polybench_workloads(["trisolv"])[0]
        base = baseline_runtime(workload, repeats=1)
        heavy = instrumented_runtime(workload, "all", repeats=1)
        assert heavy > base

    def test_overhead_sweep_subset(self):
        workload = polybench_workloads(["durbin"])[0]
        reports = overhead_sweep(workload, ["nop", "binary"], repeats=1)
        by_config = {r.config: r for r in reports}
        assert set(by_config) == {"nop", "binary", "all"}
        assert by_config["binary"].relative_runtime > \
            by_config["nop"].relative_runtime * 0.8

    def test_overhead_report_math(self):
        report = OverheadReport("x", "all", 1.0, 42.0)
        assert report.relative_runtime == 42.0


class TestFaithfulnessHelpers:
    def test_run_original_captures_prints(self):
        workload = polybench_workloads(["durbin"])[0]
        result, printed = run_original(workload)
        assert printed and isinstance(result, list)

    def test_run_instrumented_matches(self):
        workload = polybench_workloads(["durbin"])[0]
        expected, expected_printed = run_original(workload)
        actual, actual_printed, module = run_instrumented(workload)
        assert actual == expected
        assert actual_printed == expected_printed


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title + header + rule + 2 rows
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_render_table5(self):
        report = time_instrumentation("polybench/x", compile_kernel("trisolv"),
                                      repeats=2)
        text = render_table5([report])
        assert "Table 5" in text and "PolyBench" in text

    def test_render_fig8(self):
        reports = {"s": [SizeReport("a", "nop", 100, 101, 1),
                         SizeReport("a", "all", 100, 700, 10)]}
        text = render_fig8(reports, ["nop", "all"])
        assert "+1.0%" in text and "+600.0%" in text

    def test_render_fig9_geomean(self):
        reports = {"s": [OverheadReport("a", "all", 1.0, 4.0)],
                   "t": [OverheadReport("b", "all", 1.0, 9.0)]}
        text = render_fig9(reports, ["all"])
        assert "4.00x" in text and "9.00x" in text and "6.00x" in text
