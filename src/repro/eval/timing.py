"""RQ3: time to instrument (paper Table 5).

Measures the full binary→binary pipeline: decode the ``.wasm`` bytes,
instrument for all hooks, re-encode — the same work Wasabi's CLI does.
Reports mean ± stddev over repetitions, and throughput in MB/s.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from ..core.instrument import InstrumentationConfig, instrument_module
from ..wasm.decoder import decode_module
from ..wasm.encoder import encode_module
from ..wasm.module import Module


@dataclass
class TimingReport:
    name: str
    binary_bytes: int
    mean_seconds: float
    stdev_seconds: float
    repeats: int

    @property
    def throughput_mb_per_s(self) -> float:
        return (self.binary_bytes / 1e6) / self.mean_seconds


def instrument_binary(raw: bytes,
                      config: InstrumentationConfig | None = None) -> bytes:
    """The binary→binary pipeline being timed."""
    module = decode_module(raw)
    result = instrument_module(module, config=config)
    return encode_module(result.module)


def time_instrumentation(name: str, module: Module, repeats: int = 5,
                         config: InstrumentationConfig | None = None
                         ) -> TimingReport:
    raw = encode_module(module)
    samples: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        instrument_binary(raw, config)
        samples.append(time.perf_counter() - start)
    return TimingReport(
        name=name, binary_bytes=len(raw),
        mean_seconds=statistics.mean(samples),
        stdev_seconds=statistics.stdev(samples) if len(samples) > 1 else 0.0,
        repeats=repeats)
