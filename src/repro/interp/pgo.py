"""Profile-guided superinstruction selection: profiler → fusion table.

Closes the loop ROADMAP item 2 left open: the self-profiler
(:mod:`repro.obs.profiler`) records exact opcode-*pair* frequencies while
executing unfused streams, and this module turns those recordings into the
pair table :func:`repro.interp.predecode._fuse_pairs` consumes — replacing
the hand-picked superinstruction set with one derived from measured
workloads.

Two small versioned JSON artifacts:

* ``repro.profile/1`` — a recorded pair profile: per-corpus-entry metadata
  plus ``[first_name, second_name, count]`` rows (opcode *names*, not ids,
  so profiles survive opcode renumbering) and per-opcode totals. Emitted by
  ``repro pgo`` and by :func:`profile_payload` from any attached profiler.
* ``repro.fusion/1`` — a derived fusion table: the ordered pair list
  :func:`select_pairs` chose, with the share each pair had of all recorded
  pairs. Emitted by ``repro pgo --fusion-out``; consumable anywhere a
  profile is (``Machine(pgo_profile=...)``, ``repro run --pgo-profile``).

Determinism: profiles are recorded on the profiler's *unfused, unquickened*
stream (instruction counting, no sampling jitter in the pair counts), over
a fixed corpus, so two recordings of the same corpus are bit-identical —
the derived table is a pure function of the corpus.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..wasm.errors import WasmError
from .predecode import FUSION_RULES, OP_NAMES

PROFILE_SCHEMA = "repro.profile/1"
FUSION_SCHEMA = "repro.fusion/1"

#: opcode name → id, the inverse of predecode.OP_NAMES (names are unique).
_NAME_TO_OP: dict[str, int] = {name: op for op, name in OP_NAMES.items()}

#: Pairs below this share of all recorded pairs are noise, not candidates:
#: a fused handler that almost never runs still costs a dispatch-chain slot
#: for every instruction behind it.
DEFAULT_MIN_SHARE = 0.005


def profile_payload(profiler, corpus: list[dict] | None = None) -> dict:
    """The ``repro.profile/1`` artifact for one recorded profiler.

    ``corpus`` describes what was executed (workload names/groups), purely
    documentary — selection uses only the counts.
    """
    return {
        "schema": PROFILE_SCHEMA,
        "corpus": list(corpus or []),
        "total_instructions": profiler.total_instructions,
        "total_pairs": profiler.total_pairs,
        "pairs": [[first, second, count]
                  for first, second, count, _ in
                  profiler.hot_pairs(top=len(profiler.pair_counts))],
        "opcodes": {OP_NAMES[op]: count
                    for op, count in enumerate(profiler.op_counts) if count},
    }


def merge_profiles(payloads: list[dict]) -> dict:
    """Sum several ``repro.profile/1`` payloads into one corpus profile."""
    corpus: list[dict] = []
    pair_totals: dict[tuple[str, str], int] = {}
    opcode_totals: dict[str, int] = {}
    total_instructions = 0
    total_pairs = 0
    for payload in payloads:
        _check_schema(payload, PROFILE_SCHEMA)
        corpus.extend(payload.get("corpus", []))
        total_instructions += payload.get("total_instructions", 0)
        total_pairs += payload.get("total_pairs", 0)
        for first, second, count in payload.get("pairs", []):
            key = (first, second)
            pair_totals[key] = pair_totals.get(key, 0) + count
        for name, count in payload.get("opcodes", {}).items():
            opcode_totals[name] = opcode_totals.get(name, 0) + count
    ranked = sorted(pair_totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return {
        "schema": PROFILE_SCHEMA,
        "corpus": corpus,
        "total_instructions": total_instructions,
        "total_pairs": total_pairs,
        "pairs": [[first, second, count] for (first, second), count in ranked],
        "opcodes": dict(sorted(opcode_totals.items(), key=lambda kv: -kv[1])),
    }


def write_profile(payload: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_profile(path: str | Path) -> dict:
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") not in (PROFILE_SCHEMA, FUSION_SCHEMA):
        raise WasmError(
            f"not a repro profile or fusion table (schema "
            f"{payload.get('schema')!r}, expected {PROFILE_SCHEMA!r} or "
            f"{FUSION_SCHEMA!r})")
    return payload


def _check_schema(payload: dict, expected: str) -> None:
    if payload.get("schema") != expected:
        raise WasmError(f"expected a {expected!r} payload, got schema "
                        f"{payload.get('schema')!r}")


def fusable_pairs(profile: dict) -> list[tuple[str, str, int, float]]:
    """The profile's pairs restricted to the implementable fusion menu.

    Returns ``(first_name, second_name, count, share)`` rows, descending by
    count; ``share`` is of *all* recorded pairs (fusable or not), so it
    measures how much of the dynamic pair stream a fusion would cover.
    """
    _check_schema(profile, PROFILE_SCHEMA)
    total = profile.get("total_pairs", 0) or 1
    rows = []
    for first, second, count in profile.get("pairs", []):
        fop = _NAME_TO_OP.get(first)
        sop = _NAME_TO_OP.get(second)
        if fop is None or sop is None or (fop, sop) not in FUSION_RULES:
            continue
        rows.append((first, second, count, count / total))
    return rows


def unfused_hot_pairs(profile: dict,
                      top: int = 10) -> list[tuple[str, str, int, float, bool]]:
    """The profile's hottest pairs annotated with fusability.

    ``(first, second, count, share, fusable)`` rows for the report's "top
    unfused hot pairs" section: what the PGO pass *would* fuse (fusable
    True) and what it cannot (no implementable superinstruction).
    """
    _check_schema(profile, PROFILE_SCHEMA)
    total = profile.get("total_pairs", 0) or 1
    rows = []
    for first, second, count in profile.get("pairs", [])[:top]:
        fop = _NAME_TO_OP.get(first)
        sop = _NAME_TO_OP.get(second)
        fusable = (fop is not None and sop is not None
                   and (fop, sop) in FUSION_RULES)
        rows.append((first, second, count, count / total, fusable))
    return rows


def select_pairs(profile: dict,
                 min_share: float = DEFAULT_MIN_SHARE,
                 max_pairs: int | None = None) -> list[tuple[str, str]]:
    """Derive the fusion pair table from a recorded profile.

    Keeps every fusable pair covering at least ``min_share`` of all
    recorded pairs, hottest first, capped at ``max_pairs``. The result is
    deterministic for a given profile (ties broken by name).
    """
    ranked = sorted(fusable_pairs(profile),
                    key=lambda row: (-row[2], row[0], row[1]))
    chosen = [(first, second) for first, second, _count, share in ranked
              if share >= min_share]
    if max_pairs is not None:
        chosen = chosen[:max_pairs]
    return chosen


def fusion_table_payload(profile: dict,
                         min_share: float = DEFAULT_MIN_SHARE,
                         max_pairs: int | None = None) -> dict:
    """The ``repro.fusion/1`` artifact: a derived, self-describing table."""
    shares = {(first, second): share
              for first, second, _count, share in fusable_pairs(profile)}
    chosen = select_pairs(profile, min_share=min_share, max_pairs=max_pairs)
    return {
        "schema": FUSION_SCHEMA,
        "min_share": min_share,
        "derived_from": {
            "corpus": [entry.get("name") for entry in profile.get("corpus", [])],
            "total_pairs": profile.get("total_pairs", 0),
        },
        "pairs": [[first, second, round(shares[(first, second)], 6)]
                  for first, second in chosen],
    }


def resolve_fusion_pairs(source) -> frozenset[tuple[int, int]]:
    """Resolve ``Machine(pgo_profile=...)`` input to an id pair table.

    Accepts a path to — or an already-loaded dict of — either artifact:
    a ``repro.fusion/1`` table is taken verbatim; a ``repro.profile/1``
    profile goes through :func:`select_pairs` with defaults. Unknown pair
    names (from a newer/older opcode set) are ignored rather than rejected,
    as are pairs without an implementable rule.
    """
    if isinstance(source, (str, Path)):
        source = load_profile(source)
    if not isinstance(source, dict):
        raise WasmError(f"cannot resolve a fusion table from {source!r}")
    schema = source.get("schema")
    if schema == FUSION_SCHEMA:
        names = [(first, second) for first, second, *_ in source.get("pairs", [])]
    elif schema == PROFILE_SCHEMA:
        names = select_pairs(source)
    else:
        raise WasmError(
            f"not a repro profile or fusion table (schema {schema!r})")
    pairs = set()
    for first, second in names:
        fop = _NAME_TO_OP.get(first)
        sop = _NAME_TO_OP.get(second)
        if fop is not None and sop is not None and (fop, sop) in FUSION_RULES:
            pairs.add((fop, sop))
    return frozenset(pairs)


def record_workload_profile(workload) -> dict:
    """Record one workload's profile on a fresh profiling machine.

    The profiling machine executes the unfused, unquickened stream —
    instruction counting, no wall-clock sampling in the counts — so the
    result is exact and deterministic for the workload.
    """
    # imported lazily: obs → interp is the normal dependency direction
    from ..obs.telemetry import Telemetry
    from .machine import Machine

    telemetry = Telemetry(profile=True)
    machine = Machine(predecode=True, telemetry=telemetry)
    instance = machine.instantiate(workload.module(), workload.linker())
    instance.invoke(workload.entry, workload.args)
    return profile_payload(
        telemetry.profiler,
        corpus=[{"name": workload.name, "group": workload.group}])


def opcode_class_mix(profile: dict) -> dict[str, float]:
    """A profile's dynamic opcode mix aggregated to coarse classes.

    ``{class: share_of_executed_instructions}``, descending — the
    per-workload diagnostic BENCH_interp.json records next to each speedup
    (a memory-heavy mix explains a memory-bound workload's ratio).
    """
    from ..obs.profiler import OP_CLASSES

    total = profile.get("total_instructions", 0) or 1
    totals: dict[str, int] = {}
    for name, count in profile.get("opcodes", {}).items():
        op = _NAME_TO_OP.get(name)
        cls = OP_CLASSES[op] if op is not None else "other"
        totals[cls] = totals.get(cls, 0) + count
    return {cls: count / total
            for cls, count in sorted(totals.items(),
                                     key=lambda kv: (-kv[1], kv[0]))}


def record_corpus_profile(polybench_names=None, n: int | None = None,
                          include_realworld: bool = True) -> dict:
    """Record the standard corpus profile: PolyBench subset + synthetics.

    Each workload runs once via :func:`record_workload_profile` (no
    cross-workload interference) and the per-workload profiles are merged.
    Deterministic: same corpus, same counts.
    """
    from ..eval.workloads import (POLYBENCH_FAST_SUBSET, polybench_workloads,
                                  realworld_workloads)

    if polybench_names is None:
        polybench_names = POLYBENCH_FAST_SUBSET
    workloads = polybench_workloads(polybench_names, n)
    if include_realworld:
        workloads += realworld_workloads()
    return merge_profiles([record_workload_profile(w) for w in workloads])
