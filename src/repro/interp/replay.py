"""Host-boundary record/replay and self-contained crash bundles.

Determinism inside the interpreter is free: both engines are pure
functions of module bytes + instance state. What is *not* deterministic is
everything crossing the host boundary — host-function results (``env``
imports returning clock values, I/O results, …), the wall-clock reads the
:class:`~repro.interp.limits.Meter` makes for deadline checks, and the
faults an analysis hook raises (plus the containment decisions they
trigger). This module captures exactly those events:

* :class:`Recorder` — wraps a live run; every host-boundary event is
  appended, in order, to an in-memory log serialized as JSONL.
* :class:`Replayer` — drives a later run from a recorded log: host calls
  return the recorded results without invoking the host, clock reads
  return recorded readings, and hook faults are *verified* against the
  log. Any mismatch raises
  :class:`~repro.wasm.errors.ReplayDivergence` naming the log entry.

Recorder and Replayer expose the same interface, so the machine and the
Wasabi runtime hold a single ``_replay`` slot and never branch on mode.
The disabled path follows the hoisted-guard discipline: machines without
replay pay one ``is not None`` test per host call and nothing else.

**Engine independence.** Wasabi's generated low-level hooks are host
functions too, but they are *not* recorded: the pre-decoded engine
dispatches them through call-site-specialized ``OP_HOOK`` sites that
bypass the generic host-call path, so recording them would bake the
engine choice into the log. Excluding them keeps logs replayable across
engines — record on the pre-decoded engine, replay on the legacy one,
and vice versa (hooks re-execute live during replay; their *faults* are
verified, not their calls). Clock streams are consumed tolerantly
(repeating the final reading once exhausted) because deadline-check
cadence is engine-internal pacing, not guest-visible state; host-call and
fault streams are strict.

Crash bundles (:func:`write_crash_bundle` / :func:`load_crash_bundle`)
pack a failure into one self-contained directory: the module bytes, the
pre-invocation state snapshot, the replay log, the resource limits,
engine flags, analysis configuration, and a metrics snapshot — everything
``repro replay`` needs to reproduce the failure bit-for-bit on another
machine.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..wasm import errors as _errors
from ..wasm.errors import ReplayDivergence, SnapshotError, WasmError
from ..wasm.types import GlobalType, MemoryType, ValType
from .host import Linker
from .snapshot import Snapshot, decode_values, encode_values

#: Schema tag on the first line of every replay log.
REPLAY_SCHEMA = "repro.replay/1"
#: Schema tag in every crash-bundle manifest.
BUNDLE_SCHEMA = "repro.bundle/1"

#: Entry kinds verified strictly during replay; leftover entries of these
#: kinds at :meth:`Replayer.finish` are divergences. (``clock`` is
#: intentionally absent: deadline-check cadence is engine pacing.)
STRICT_KINDS = ("host_call", "wasi_call", "hook_fault", "quarantine")


def _encode_error(exc: BaseException) -> dict:
    return {"type": exc.__class__.__name__, "message": str(exc)}


def _decode_error(err: dict) -> Exception:
    """Rebuild a recorded exception for re-raising during replay.

    Resolves the class from the wasm error hierarchy first, then builtins;
    unknown types degrade to :class:`WasmError` (the class name is kept in
    the message so triage still sees it).
    """
    name = err.get("type", "WasmError")
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        import builtins
        cls = getattr(builtins, name, None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        return WasmError(f"[{name}] {err.get('message', '')}")
    try:
        return cls(err.get("message", ""))
    except TypeError:
        return WasmError(f"[{name}] {err.get('message', '')}")


class Recorder:
    """Records every host-boundary event of a live run, in order.

    Hand one to ``Machine(replay=...)`` (and through
    ``AnalysisSession(replay=...)`` for instrumented runs); afterwards
    :meth:`write` persists the log as JSONL.
    """

    is_replaying = False

    def __init__(self):
        self.entries: list[dict] = []

    # -- the host-boundary interface (shared with Replayer) -----------------

    def host_call(self, name: str, args, invoke):
        """Invoke a host function and record its outcome.

        ``invoke`` performs the actual call (including strict result
        coercion) and returns the canonical result list; exceptions are
        recorded too, so a replay reproduces a host-raised trap without
        the host.
        """
        entry = {"kind": "host_call", "name": name,
                 "args": encode_values(args)}
        try:
            results = invoke()
        except Exception as exc:
            entry["error"] = _encode_error(exc)
            self.entries.append(entry)
            raise
        entry["results"] = encode_values(results)
        self.entries.append(entry)
        return results

    def wasi_call(self, name: str, args, invoke):
        """Invoke a WASI syscall and record its outcome *and memory writes*.

        Unlike :meth:`host_call`, WASI syscalls have guest-visible side
        effects beyond their return values — ``fd_read`` writes into
        linear memory. ``invoke`` returns ``(values, writes)`` where
        ``writes`` is a list of ``(addr, bytes)`` pairs already applied to
        memory; both are recorded so a replay (which never re-enters the
        in-memory FS) can re-apply them byte-for-byte.
        """
        entry = {"kind": "wasi_call", "name": name,
                 "args": encode_values(args)}
        try:
            values, writes = invoke()
        except Exception as exc:
            entry["error"] = _encode_error(exc)
            self.entries.append(entry)
            raise
        entry["results"] = encode_values(values)
        entry["writes"] = [
            {"addr": addr, "data": base64.b64encode(bytes(data)).decode("ascii")}
            for addr, data in writes]
        self.entries.append(entry)
        return values, writes

    def bind_clock(self, base_clock):
        """Wrap a clock so every reading is recorded.

        Must wrap *before* the Meter is constructed — ``Meter.__init__``
        arms the deadline, which reads the clock.
        """
        entries = self.entries

        def recording_clock() -> float:
            t = base_clock()
            entries.append({"kind": "clock", "t": t})
            return t

        return recording_clock

    def hook_fault(self, hook_name: str, exc: BaseException, location,
                   action: str) -> None:
        """Record one contained analysis-hook fault and the policy verdict."""
        self.entries.append({
            "kind": "hook_fault", "hook": hook_name,
            "location": str(location) if location is not None else None,
            "error": _encode_error(exc), "action": action,
        })

    def quarantine(self, hook_name: str) -> None:
        """Record a quarantine decision (hook dispatch swapped to no-op)."""
        self.entries.append({"kind": "quarantine", "hook": hook_name})

    # -- serialization -------------------------------------------------------

    def to_jsonl(self) -> str:
        lines = [json.dumps({"schema": REPLAY_SCHEMA})]
        lines.extend(json.dumps(entry) for entry in self.entries)
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path


def load_log(path: str | Path) -> list[dict]:
    """Load a JSONL replay log, validating the schema header.

    Any way the file can be broken — missing, unreadable, truncated
    mid-line, not JSON at all — surfaces as :class:`WasmError`, so the CLI
    answers with its taxonomy instead of a traceback.
    """
    try:
        lines = [ln for ln in Path(path).read_text().splitlines()
                 if ln.strip()]
    except OSError as exc:
        raise WasmError(f"cannot read replay log {path}: {exc}") from None
    if not lines:
        raise WasmError(f"empty replay log {path}")
    try:
        header = json.loads(lines[0])
        entries = [json.loads(ln) for ln in lines[1:]]
    except json.JSONDecodeError as exc:
        raise WasmError(f"corrupt replay log {path}: {exc}") from None
    if not isinstance(header, dict) or header.get("schema") != REPLAY_SCHEMA:
        schema = header.get("schema") if isinstance(header, dict) else None
        raise WasmError(
            f"not a repro replay log (schema {schema!r}, "
            f"expected {REPLAY_SCHEMA!r})")
    return entries


class Replayer:
    """Drives a run from a recorded log, verifying it never diverges.

    Entries are consumed as independent per-kind streams (host calls,
    clock readings, hook faults, quarantines): the *relative* interleaving
    of clock reads with host calls is engine pacing, while each stream's
    own order is guest-determined and checked strictly. A mismatch — or
    strict entries left unconsumed when :meth:`finish` is called — raises
    :class:`ReplayDivergence` with the offending entry index.
    """

    is_replaying = True

    def __init__(self, entries: list[dict], telemetry=None):
        self._streams: dict[str, list[dict]] = {}
        for entry in entries:
            self._streams.setdefault(entry["kind"], []).append(entry)
        self._cursors: dict[str, int] = {kind: 0 for kind in self._streams}
        #: Optional Telemetry sink; charged one ``n_replayed_host_calls``
        #: per host call served from the log.
        self.telemetry = telemetry

    @classmethod
    def load(cls, path: str | Path, telemetry=None) -> "Replayer":
        return cls(load_log(path), telemetry=telemetry)

    def _next(self, kind: str) -> tuple[int, dict | None]:
        index = self._cursors.get(kind, 0)
        stream = self._streams.get(kind, ())
        if index >= len(stream):
            return index, None
        self._cursors[kind] = index + 1
        return index, stream[index]

    # -- the host-boundary interface (shared with Recorder) -----------------

    def host_call(self, name: str, args, invoke):
        """Serve one host call from the log; ``invoke`` is never called."""
        index, entry = self._next("host_call")
        if entry is None:
            raise ReplayDivergence(
                f"host call {name}({list(args)!r}) but the recorded log has "
                f"no more host calls", index=index)
        if entry["name"] != name:
            raise ReplayDivergence(
                f"host call {name} but the log recorded {entry['name']}",
                index=index)
        if entry["args"] != encode_values(args):
            raise ReplayDivergence(
                f"host call {name} with arguments {list(args)!r}, but the "
                f"log recorded {decode_values(entry['args'])!r}", index=index)
        tele = self.telemetry
        if tele is not None:
            tele.n_replayed_host_calls += 1
        if "error" in entry:
            raise _decode_error(entry["error"])
        return decode_values(entry["results"])

    def wasi_call(self, name: str, args, invoke):
        """Serve one WASI syscall from the log; ``invoke`` is never called.

        Returns ``(values, writes)`` mirroring the recording protocol; the
        caller (the WASI context) applies ``writes`` to guest memory, so
        replayed runs see identical memory effects without the in-memory
        FS, the fault plane, or the host clock.
        """
        index, entry = self._next("wasi_call")
        if entry is None:
            raise ReplayDivergence(
                f"WASI call {name}({list(args)!r}) but the recorded log has "
                f"no more WASI calls", index=index)
        if entry["name"] != name:
            raise ReplayDivergence(
                f"WASI call {name} but the log recorded {entry['name']}",
                index=index)
        if entry["args"] != encode_values(args):
            raise ReplayDivergence(
                f"WASI call {name} with arguments {list(args)!r}, but the "
                f"log recorded {decode_values(entry['args'])!r}", index=index)
        tele = self.telemetry
        if tele is not None:
            tele.n_replayed_host_calls += 1
        if "error" in entry:
            raise _decode_error(entry["error"])
        writes = [(w["addr"], base64.b64decode(w["data"]))
                  for w in entry.get("writes", ())]
        return decode_values(entry["results"]), writes

    def bind_clock(self, base_clock):
        """Replace a clock with the recorded reading stream.

        Tolerant on exhaustion: once the stream runs out the final reading
        repeats (an engine that checks the deadline more often than the
        recording engine did must not fabricate time). The reading that
        triggered a recorded ``DeadlineExceeded`` is in the stream, so the
        trap still reproduces.
        """
        def replayed_clock() -> float:
            index, entry = self._next("clock")
            if entry is None:
                stream = self._streams.get("clock", ())
                return stream[-1]["t"] if stream else 0.0
            return entry["t"]

        return replayed_clock

    def hook_fault(self, hook_name: str, exc: BaseException, location,
                   action: str) -> None:
        """Verify a live hook fault against the next recorded one."""
        index, entry = self._next("hook_fault")
        loc = str(location) if location is not None else None
        if entry is None:
            raise ReplayDivergence(
                f"hook {hook_name} faulted ({exc.__class__.__name__}: {exc}) "
                f"but the recorded log has no more hook faults",
                index=index, location=location)
        live = {"hook": hook_name, "location": loc,
                "error": _encode_error(exc), "action": action}
        for key in ("hook", "location", "error", "action"):
            if entry.get(key) != live[key]:
                raise ReplayDivergence(
                    f"hook fault mismatch: live {key}={live[key]!r}, "
                    f"recorded {key}={entry.get(key)!r}",
                    index=index, location=location)

    def quarantine(self, hook_name: str) -> None:
        """Verify a live quarantine decision against the log."""
        index, entry = self._next("quarantine")
        if entry is None or entry["hook"] != hook_name:
            recorded = entry["hook"] if entry else "none"
            raise ReplayDivergence(
                f"hook {hook_name} quarantined, but the log recorded "
                f"{recorded}", index=index)

    def finish(self) -> None:
        """Check that every strict recorded entry was consumed.

        Call after the replayed run completes (success or the expected
        error); leftovers mean the replay took a shorter path than the
        recording — a divergence even though no single event mismatched.
        """
        for kind in STRICT_KINDS:
            stream = self._streams.get(kind, ())
            cursor = self._cursors.get(kind, 0)
            if cursor < len(stream):
                raise ReplayDivergence(
                    f"{len(stream) - cursor} recorded {kind} entries were "
                    f"never replayed (first unconsumed: "
                    f"{stream[cursor]!r})", index=cursor)


def replay_linker(module) -> Linker:
    """Build a linker satisfying a module's imports for replay.

    Replayed runs never enter host functions (results come from the log),
    so function imports get placeholder implementations that raise if
    reached — reaching one means the machine was not given a Replayer.
    Memory/table/global imports are materialized from their declared types
    (their contents come from the bundle's state snapshot).
    """
    linker = Linker()
    for imp in module.imports:
        desc = imp.desc
        if isinstance(desc, int):
            functype = module.types[desc]

            def placeholder(args, _name=f"{imp.module}.{imp.name}"):
                raise WasmError(
                    f"host function {_name} entered during replay "
                    f"(machine is missing its Replayer)")

            linker.define_function(imp.module, imp.name, functype, placeholder)
        elif isinstance(desc, MemoryType):
            linker.define_memory(imp.module, imp.name, desc.limits)
        elif isinstance(desc, GlobalType):
            zero = 0.0 if desc.valtype in (ValType.F32, ValType.F64) else 0
            linker.define_global(imp.module, imp.name, desc, zero)
        else:  # TableType
            linker.define_table(imp.module, imp.name, desc.limits)
    return linker


# -- crash bundles ------------------------------------------------------------


@dataclass
class CrashBundle:
    """An in-memory view of a crash-bundle directory.

    ``manifest`` carries the failure description (error class/message,
    failing stage or invocation sequence, engine flags, limits, analyses,
    metrics); ``module_bytes`` the exact binary; ``snapshot`` the
    pre-invocation state (None for pipeline-stage failures that never
    instantiated); ``log`` the recorded host-boundary entries (None
    likewise); ``flight`` the service flight-recorder tail — the
    structured-log records leading up to a worker kill (None for
    non-service bundles).
    """

    path: Path
    manifest: dict
    module_bytes: bytes
    snapshot: Snapshot | None = None
    log: list[dict] | None = field(default=None)
    flight: list[dict] | None = field(default=None)

    @property
    def error(self) -> dict:
        return self.manifest.get("error", {})

    def replayer(self, telemetry=None) -> Replayer | None:
        if self.log is None:
            return None
        return Replayer(self.log, telemetry=telemetry)


def write_crash_bundle(directory: str | Path, module_bytes: bytes,
                       manifest: dict, snapshot: Snapshot | None = None,
                       recorder: Recorder | None = None,
                       flight: list[dict] | None = None) -> Path:
    """Write a self-contained crash bundle directory.

    Layout: ``manifest.json`` (schema-tagged), ``module.wasm``,
    optionally ``snapshot.json``, ``replay.jsonl``, and ``flight.jsonl``
    (the service flight-recorder tail). Existing files are overwritten —
    a bundle directory is owned by its failure.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    full = {"schema": BUNDLE_SCHEMA}
    full.update(manifest)
    full["files"] = {"module": "module.wasm"}
    if snapshot is not None:
        full["files"]["snapshot"] = "snapshot.json"
    if recorder is not None:
        full["files"]["replay"] = "replay.jsonl"
    if flight is not None:
        full["files"]["flight"] = "flight.jsonl"
    (directory / "module.wasm").write_bytes(module_bytes)
    if snapshot is not None:
        snapshot.write(directory / "snapshot.json")
    if recorder is not None:
        recorder.write(directory / "replay.jsonl")
    if flight is not None:
        from ..obs.log import flight_to_jsonl
        (directory / "flight.jsonl").write_text(flight_to_jsonl(flight))
    (directory / "manifest.json").write_text(
        json.dumps(full, indent=2, default=str) + "\n")
    return directory


def load_crash_bundle(directory: str | Path) -> CrashBundle:
    """Load a crash bundle, validating its schema tag.

    Corrupt or truncated bundles (hand-edited manifests, interrupted
    writes, missing payload files) raise :class:`WasmError` /
    :class:`SnapshotError` — never a bare ``json`` or ``OSError``
    traceback — so ``repro bundle`` / ``repro replay`` keep their exit
    taxonomy on damaged input.
    """
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.is_file():
        raise WasmError(f"{directory} is not a crash bundle "
                        f"(no manifest.json)")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise WasmError(
            f"{directory}: corrupt bundle manifest: {exc}") from None
    if not isinstance(manifest, dict):
        raise WasmError(f"{directory}: bundle manifest is not a JSON object")
    if manifest.get("schema") != BUNDLE_SCHEMA:
        raise WasmError(
            f"not a repro crash bundle (schema {manifest.get('schema')!r}, "
            f"expected {BUNDLE_SCHEMA!r})")
    files = manifest.get("files", {})
    if not isinstance(files, dict):
        raise WasmError(f"{directory}: bundle manifest 'files' entry is "
                        f"not a JSON object")
    module_path = directory / files.get("module", "module.wasm")
    try:
        module_bytes = module_path.read_bytes()
    except OSError as exc:
        raise WasmError(f"{directory}: bundle module {module_path.name!r} "
                        f"cannot be read: {exc}") from None
    snapshot = None
    if "snapshot" in files:
        try:
            snapshot = Snapshot.read(directory / files["snapshot"])
        except FileNotFoundError:
            raise SnapshotError(
                f"bundle manifest names snapshot {files['snapshot']!r} "
                f"but the file is missing") from None
        except (OSError, json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            raise SnapshotError(
                f"corrupt bundle snapshot {files['snapshot']!r}: "
                f"{exc}") from None
    log = None
    if "replay" in files:
        log = load_log(directory / files["replay"])
    flight = None
    if "flight" in files:
        from ..obs.log import flight_from_jsonl
        flight_path = directory / files["flight"]
        try:
            flight = flight_from_jsonl(flight_path.read_text())
        except FileNotFoundError:
            raise WasmError(
                f"bundle manifest names flight log {files['flight']!r} "
                f"but the file is missing") from None
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            raise WasmError(f"{directory}: corrupt bundle flight log "
                            f"{files['flight']!r}: {exc}") from None
    return CrashBundle(path=directory, manifest=manifest,
                       module_bytes=module_bytes, snapshot=snapshot, log=log,
                       flight=flight)
