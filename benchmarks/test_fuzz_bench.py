"""Fuzzing campaign throughput and guidance quality (BENCH_fuzz.json).

Two claims, one JSON artifact:

* **Throughput** — the sharded engine vs the PR-3 serial harness
  (`run_campaign`) at the same budget and seed. Absolute speedups depend
  on the machine (this box may have one core, and on 3.10/3.11 the
  ``settrace`` coverage backend multiplies per-mutant cost ~5x), so the
  numbers are recorded honestly and the floors are gated on
  ``os.cpu_count()`` / the collector backend instead of asserted blind.
* **Guidance** — coverage-guided mode finds strictly more unique
  ``(stage, outcome, error-class)`` signatures than blind mutation at
  equal budget and seed. The campaign shape (budget, seed, shard count,
  round size) is pinned to the CI configuration, and shard merging is
  submission-order deterministic, so this comparison reproduces exactly
  on any machine and is asserted unconditionally. At larger budgets blind
  eventually reaches the same classes (the signature space of a robust
  pipeline is small); the guided win is reaching them with fewer mutants.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.eval.coverage import default_backend
from repro.eval.faultinject import run_campaign
from repro.eval.fuzz import FuzzConfig, bench_payload, run_fuzz_campaign

from conftest import full_run

SEED = 20260806  # the CI campaign seed; ISSUE-6 pins the comparison here

#: The pinned guidance-comparison shape: 4 shards x 250-mutant rounds,
#: 2000 mutants. Changing any of these changes which mutants each mode
#: schedules, i.e. it is a different experiment.
GUIDANCE_BUDGET = 2000
GUIDANCE_SHARDS = 4
GUIDANCE_ROUND = 250


def _workers() -> int:
    return max(1, min(4, os.cpu_count() or 1))


def test_fuzz_throughput_and_guidance(results_dir):
    budget = 5000 if full_run() else 2000
    workers = _workers()

    start = time.perf_counter()
    serial = run_campaign(mutants=budget, seed=SEED)
    serial_elapsed = time.perf_counter() - start
    serial_rate = budget / serial_elapsed
    assert serial.ok, serial.summary()

    blind = run_fuzz_campaign(FuzzConfig(
        mutants=budget, seed=SEED, parallel=workers))
    par_cov = run_fuzz_campaign(FuzzConfig(
        mutants=budget, seed=SEED, parallel=workers, coverage=True))
    assert blind.ok and par_cov.ok

    # the guidance experiment: pinned shape, deterministic on any machine
    gblind = run_fuzz_campaign(FuzzConfig(
        mutants=GUIDANCE_BUDGET, seed=SEED, parallel=GUIDANCE_SHARDS,
        round_size=GUIDANCE_ROUND))
    gcov = run_fuzz_campaign(FuzzConfig(
        mutants=GUIDANCE_BUDGET, seed=SEED, parallel=GUIDANCE_SHARDS,
        round_size=GUIDANCE_ROUND, coverage=True))
    blind_sigs = set(gblind.signatures)
    cov_sigs = set(gcov.signatures)

    payload = {
        "budget": budget,
        "seed": SEED,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "coverage_backend": default_backend(),
        "serial": {"mutants": budget,
                   "elapsed_seconds": round(serial_elapsed, 4),
                   "mutants_per_sec": round(serial_rate, 1)},
        "parallel_blind": bench_payload(blind),
        "parallel_coverage": bench_payload(par_cov),
        "blind_speedup": round(blind.mutants_per_sec / serial_rate, 3),
        "coverage_speedup": round(par_cov.mutants_per_sec / serial_rate, 3),
        "guidance": {
            "budget": GUIDANCE_BUDGET,
            "shards": GUIDANCE_SHARDS,
            "round_size": GUIDANCE_ROUND,
            "signatures_blind": sorted(blind_sigs),
            "signatures_coverage": sorted(cov_sigs),
            "signatures_coverage_only": sorted(cov_sigs - blind_sigs),
        },
    }
    path = results_dir / "BENCH_fuzz.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"serial {serial_rate:,.0f}/s | "
          f"blind x{payload['blind_speedup']} | "
          f"coverage x{payload['coverage_speedup']} "
          f"({payload['coverage_backend']}, {workers} workers) | "
          f"signatures {len(blind_sigs)} blind vs {len(cov_sigs)} guided "
          f"[recorded in {path}]")

    # guidance claim: strictly more unique signatures at equal budget+seed
    assert len(cov_sigs) > len(blind_sigs), payload["guidance"]
    assert cov_sigs > blind_sigs, payload["guidance"]  # superset, not a trade
    assert gcov.new_signatures  # bundling is exercised in tier-1 tests

    # throughput floors, where the hardware can express them
    cores = os.cpu_count() or 1
    if cores >= 2:
        # sharding must not be slower than the serial harness
        assert payload["blind_speedup"] >= 0.9, payload
    if cores >= 4:
        # blind sharding parallelizes near-linearly (no coverage tax)
        assert payload["blind_speedup"] >= 2.5, payload
    if cores >= 4 and default_backend() == "monitoring":
        # the acceptance floor: guided throughput >= 5x the serial harness
        # needs real cores *and* the ~free 3.12 sys.monitoring backend
        # (settrace multiplies per-mutant cost by ~5x and would hide it)
        assert payload["coverage_speedup"] >= 5.0, payload


def test_blind_parallel_matches_serial_signatures(results_dir):
    """The speedup comparison is apples-to-apples: sharded blind mode
    reproduces the serial harness' stage aggregates exactly."""
    budget = 600
    serial = run_campaign(mutants=budget, seed=SEED)
    blind = run_fuzz_campaign(FuzzConfig(
        mutants=budget, seed=SEED, parallel=_workers(),
        round_size=100))
    assert blind.rejected_at == serial.rejected_at
    assert blind.survived == serial.survived
