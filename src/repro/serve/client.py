"""Client for the ``repro serve`` daemon: one request, one response.

Connection-per-request over the unix socket, with request timeouts and
bounded, backed-off retries on *transport* failures (connection refused,
reset, a daemon mid-restart). Application-level failures — a killed
request, an open breaker, a guest trap — are **not** retried here: the
daemon already applied the pool's retry policy, and its response carries
the exit-status taxonomy for the caller to act on.

Exhausting the transport retries raises
:class:`~repro.wasm.errors.ServiceUnavailable`.

Tracing: construct with a :class:`~repro.obs.Telemetry` sink and every
request opens a client-side ``serve_request`` span, sends its
:class:`~repro.obs.SpanContext` in the message's ``trace`` field, and
adopts the daemon/worker spans that come back in the response — so the
sink's exported trace is the stitched cross-process tree. Without a
sink, the wire format and request path are unchanged.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path

from ..wasm.errors import ServiceUnavailable
from . import wire


class ServeClient:
    """Talks to one daemon socket; stateless between requests."""

    def __init__(self, socket_path: str | Path, timeout: float = 120.0,
                 retries: int = 2, retry_delay: float = 0.1,
                 telemetry=None):
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.retries = retries
        self.retry_delay = retry_delay
        self.telemetry = telemetry
        if telemetry is not None and telemetry.tracer.process is None:
            telemetry.tracer.process = "client"

    # -- transport -------------------------------------------------------------

    def request(self, message: dict, timeout: float | None = None) -> dict:
        """Send one request and return the decoded response dict."""
        telemetry = self.telemetry
        if telemetry is None:
            return self._send(message, timeout)
        tracer = telemetry.tracer
        tracer.ensure_trace()
        with tracer.span("serve_request", op=message.get("kind")):
            message = dict(message)
            message["trace"] = tracer.current_context().as_dict()
            response = self._send(message, timeout)
        tracer.adopt(response.pop("spans", None) if isinstance(response, dict)
                     else None)
        return response

    def _send(self, message: dict, timeout: float | None = None) -> dict:
        budget = timeout if timeout is not None else self.timeout
        payload = wire.dumps(message)
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.retry_delay * (2 ** (attempt - 1)))
            try:
                return self._round_trip(payload, budget)
            except (ConnectionError, FileNotFoundError, socket.timeout,
                    OSError, wire.WireError) as exc:
                last_error = exc
        raise ServiceUnavailable(
            f"cannot reach repro service at {self.socket_path} after "
            f"{self.retries + 1} attempts: {last_error}")

    def _round_trip(self, payload: bytes, budget: float) -> dict:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
            conn.settimeout(budget)
            conn.connect(self.socket_path)
            conn.sendall(payload)
            with conn.makefile("rb") as reader:
                line = wire.read_line(reader)
            if not line.strip():
                raise ConnectionError("daemon closed the connection "
                                      "without a response")
            return wire.loads(line)

    # -- convenience verbs -------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"kind": "ping"}, timeout=10.0)

    def run(self, module_bytes: bytes, entry: str, args=None,
            analysis: str = "none", limits: dict | None = None,
            instrument: bool = False, on_analysis_error: str = "raise",
            request_timeout: float | None = None,
            wasi: dict | None = None) -> dict:
        from ..interp.snapshot import encode_values
        message = {
            "kind": "run", "module": module_bytes, "entry": entry,
            "args": encode_values(args or []), "analysis": analysis,
            "limits": limits, "instrument": instrument,
            "on_analysis_error": on_analysis_error,
        }
        if wasi is not None:
            # a WasiContext.config() record: packed FS image (b64 files +
            # stdin), guest argv/env, fault plane, clock/random seeds
            message["wasi"] = wasi
        if request_timeout is not None:
            message["request_timeout"] = request_timeout
        return self.request(message)

    def instrument(self, module_bytes: bytes, groups=None,
                   request_timeout: float | None = None) -> dict:
        message = {"kind": "instrument", "module": module_bytes,
                   "groups": sorted(groups) if groups is not None else None}
        if request_timeout is not None:
            message["request_timeout"] = request_timeout
        return self.request(message)

    def stats(self) -> dict:
        return self.request({"kind": "stats"}, timeout=10.0)

    def metrics(self) -> dict:
        """The daemon's Prometheus text exposition (``metrics`` op)."""
        return self.request({"kind": "metrics"}, timeout=10.0)

    def shutdown_daemon(self) -> dict:
        return self.request({"kind": "shutdown_daemon"}, timeout=10.0)
