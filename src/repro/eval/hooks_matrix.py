"""Per-hook-group analyses for the Figures 8/9 sweeps.

The paper's RQ4/RQ5 instrument each program once per hook group (selective
instrumentation) and once for all hooks. The helpers below build "empty"
analyses — hooks that are called but do nothing, mirroring the empty
analyses used to measure framework overhead in Jalangi/RoadRunner — that
trigger instrumentation of exactly one group (or all of them).
"""

from __future__ import annotations

from ..core.analysis import ALL_GROUPS, HOOK_METHOD_TO_GROUP, Analysis

#: The x-axis order of the paper's Figures 8 and 9.
FIGURE_GROUPS = [
    "nop", "unreachable", "memory_size", "memory_grow", "select", "drop",
    "load", "store", "call", "return", "const", "unary", "binary", "global",
    "local", "begin", "end", "if", "br", "br_if", "br_table",
]

assert set(FIGURE_GROUPS) == set(ALL_GROUPS)

_GROUP_TO_METHODS: dict[str, list[str]] = {}
for _method, _group in HOOK_METHOD_TO_GROUP.items():
    _GROUP_TO_METHODS.setdefault(_group, []).append(_method)


def _noop_hook(*args, **kwargs) -> None:
    pass


def make_group_analysis(group: str) -> Analysis:
    """An analysis that implements exactly the hooks of one group (no-ops)."""
    methods = _GROUP_TO_METHODS[group]
    cls = type(f"Empty_{group}_Analysis", (Analysis,),
               {method: _noop_hook for method in methods})
    return cls()


def make_full_analysis() -> Analysis:
    """An empty analysis implementing *all* hooks (the paper's "all" bars)."""
    cls = type("EmptyFullAnalysis", (Analysis,),
               {method: _noop_hook for method in HOOK_METHOD_TO_GROUP})
    return cls()
