"""Decoder for the WebAssembly binary format (spec 1.0 / MVP).

Parses complete ``.wasm`` binaries into :class:`repro.wasm.module.Module`,
including the function-name subsection of the name section. Unknown custom
sections are preserved verbatim so that re-encoding keeps them.
"""

from __future__ import annotations

import struct

from . import leb128, opcodes
from .errors import DecodeError
from .module import (BrTable, CustomSection, DataSegment, ElemSegment, Export,
                     Function, Global, Import, Instr, MemArg, Module)
from .encoder import MAGIC, VERSION
from .types import (BYTE_TO_VALTYPE, EMPTY_BLOCKTYPE_BYTE, FuncType,
                    GlobalType, Limits, MemoryType, TableType, ValType)


class _Reader:
    """Cursor over a byte buffer with primitive readers for the format."""

    def __init__(self, data: bytes, pos: int = 0, end: int | None = None):
        self.data = data
        self.pos = pos
        self.end = len(data) if end is None else end

    def eof(self) -> bool:
        return self.pos >= self.end

    def byte(self) -> int:
        if self.pos >= self.end:
            raise DecodeError("unexpected end of input", offset=self.pos)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def raw(self, count: int) -> bytes:
        if self.pos + count > self.end:
            raise DecodeError("unexpected end of input", offset=self.pos)
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def u32(self) -> int:
        value, self.pos = leb128.decode_unsigned(self.data, self.pos, 32)
        return value

    def s32(self) -> int:
        value, self.pos = leb128.decode_signed(self.data, self.pos, 32)
        return value

    def s64(self) -> int:
        value, self.pos = leb128.decode_signed(self.data, self.pos, 64)
        return value

    def f32(self) -> float:
        return struct.unpack("<f", self.raw(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.raw(8))[0]

    def name(self) -> str:
        length = self.u32()
        try:
            return self.raw(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"malformed UTF-8 name: {exc}", offset=self.pos) from None

    def valtype(self) -> ValType:
        byte = self.byte()
        try:
            return BYTE_TO_VALTYPE[byte]
        except KeyError:
            raise DecodeError(f"invalid value type byte {byte:#x}",
                              offset=self.pos - 1) from None

    def blocktype(self) -> ValType | None:
        byte = self.byte()
        if byte == EMPTY_BLOCKTYPE_BYTE:
            return None
        try:
            return BYTE_TO_VALTYPE[byte]
        except KeyError:
            raise DecodeError(f"invalid block type byte {byte:#x}",
                              offset=self.pos - 1) from None

    def limits(self) -> Limits:
        offset = self.pos
        flag = self.byte()
        if flag == 0x00:
            return Limits(self.u32())
        if flag == 0x01:
            minimum = self.u32()
            maximum = self.u32()
            try:
                return Limits(minimum, maximum)
            except ValueError as exc:
                # Limits' own sanity check (max < min) is a ValueError for
                # programmatic construction; from binary input it must
                # surface as a malformed-module error
                raise DecodeError(str(exc), offset=offset) from None
        raise DecodeError(f"invalid limits flag {flag:#x}", offset=self.pos - 1)


def decode_instr(reader: _Reader) -> Instr:
    """Decode a single instruction at the reader's cursor."""
    offset = reader.pos
    byte = reader.byte()
    op = opcodes.BY_BYTE.get(byte)
    if op is None:
        raise DecodeError(f"unknown opcode byte {byte:#04x}", offset=offset)
    imm = op.imm
    if imm is opcodes.Imm.NONE:
        return Instr(op.mnemonic)
    if imm is opcodes.Imm.BLOCKTYPE:
        return Instr(op.mnemonic, blocktype=reader.blocktype())
    if imm is opcodes.Imm.LABEL:
        return Instr(op.mnemonic, label=reader.u32())
    if imm is opcodes.Imm.BR_TABLE:
        count = reader.u32()
        labels = tuple(reader.u32() for _ in range(count))
        return Instr(op.mnemonic, br_table=BrTable(labels, reader.u32()))
    if imm in (opcodes.Imm.FUNC_IDX, opcodes.Imm.LOCAL_IDX, opcodes.Imm.GLOBAL_IDX):
        return Instr(op.mnemonic, idx=reader.u32())
    if imm is opcodes.Imm.TYPE_IDX:
        type_idx = reader.u32()
        reserved = reader.byte()
        if reserved != 0x00:
            raise DecodeError("call_indirect reserved byte must be zero", offset=offset)
        return Instr(op.mnemonic, idx=type_idx)
    if imm is opcodes.Imm.MEMARG:
        align = reader.u32()
        return Instr(op.mnemonic, memarg=MemArg(align, reader.u32()))
    if imm is opcodes.Imm.MEM_IDX:
        reserved = reader.byte()
        if reserved != 0x00:
            raise DecodeError("memory instruction reserved byte must be zero", offset=offset)
        return Instr(op.mnemonic)
    if imm is opcodes.Imm.CONST_I32:
        return Instr(op.mnemonic, value=reader.s32())
    if imm is opcodes.Imm.CONST_I64:
        return Instr(op.mnemonic, value=reader.s64())
    if imm is opcodes.Imm.CONST_F32:
        return Instr(op.mnemonic, value=reader.f32())
    if imm is opcodes.Imm.CONST_F64:
        return Instr(op.mnemonic, value=reader.f64())
    raise DecodeError(f"unhandled immediate kind {imm}", offset=offset)  # pragma: no cover


def decode_expr(reader: _Reader) -> list[Instr]:
    """Decode instructions up to and including the matching top-level ``end``.

    The returned list *excludes* the final ``end`` (it is implicit for
    initializer expressions, and function bodies re-append it).
    """
    instrs: list[Instr] = []
    depth = 0
    while True:
        instr = decode_instr(reader)
        if instr.op == "end":
            if depth == 0:
                return instrs
            depth -= 1
        elif instr.info.is_block_start:
            depth += 1
        instrs.append(instr)


def _decode_import(reader: _Reader) -> Import:
    module = reader.name()
    name = reader.name()
    kind = reader.byte()
    if kind == 0x00:
        return Import(module, name, reader.u32())
    if kind == 0x01:
        elem = reader.byte()
        if elem != 0x70:
            raise DecodeError(f"invalid table element type {elem:#x}")
        return Import(module, name, TableType(reader.limits()))
    if kind == 0x02:
        return Import(module, name, MemoryType(reader.limits()))
    if kind == 0x03:
        valtype = reader.valtype()
        mutable = reader.byte() == 0x01
        return Import(module, name, GlobalType(valtype, mutable))
    raise DecodeError(f"invalid import kind {kind:#x}")


_EXPORT_KIND = {0: "func", 1: "table", 2: "memory", 3: "global"}


def _decode_code(reader: _Reader, type_idx: int) -> Function:
    size = reader.u32()
    body_end = reader.pos + size
    if body_end > reader.end:
        raise DecodeError(f"function body size {size} extends past its section",
                          offset=reader.pos)
    sub = _Reader(reader.data, reader.pos, body_end)
    locals_: list[ValType] = []
    for _ in range(sub.u32()):
        count = sub.u32()
        valtype = sub.valtype()
        # cap the *total*, not just each entry: many entries of large counts
        # in a tiny body must not balloon into gigabytes of locals
        if count > 1_000_000 or len(locals_) + count > 1_000_000:
            raise DecodeError(f"too many locals ({count})", offset=sub.pos)
        locals_.extend([valtype] * count)
    body = decode_expr(sub)
    body.append(Instr("end"))
    if not sub.eof():
        raise DecodeError("trailing bytes after function body", offset=sub.pos)
    reader.pos = body_end
    return Function(type_idx=type_idx, locals=locals_, body=body)


def _decode_name_section(module: Module, payload: bytes) -> None:
    reader = _Reader(payload)
    while not reader.eof():
        sub_id = reader.byte()
        size = reader.u32()
        if reader.pos + size > reader.end:
            raise DecodeError("name subsection extends past the section",
                              offset=reader.pos)
        sub = _Reader(reader.data, reader.pos, reader.pos + size)
        reader.pos += size
        if sub_id == 0:  # module name
            module.name = sub.name()
        elif sub_id == 1:  # function names
            n_imported = module.num_imported_functions
            for _ in range(sub.u32()):
                func_idx = sub.u32()
                name = sub.name()
                defined = func_idx - n_imported
                if 0 <= defined < len(module.functions):
                    module.functions[defined].name = name
        # other subsections (locals, …) are ignored


def decode_module(data: bytes) -> Module:
    """Parse a complete ``.wasm`` binary into a :class:`Module`."""
    if data[:4] != MAGIC:
        raise DecodeError("missing \\0asm magic number", offset=0)
    if data[4:8] != VERSION:
        raise DecodeError(f"unsupported version {data[4:8]!r}", offset=4)
    reader = _Reader(data, 8)
    module = Module()
    func_type_idxs: list[int] = []
    last_section = 0
    while not reader.eof():
        section_id = reader.byte()
        size = reader.u32()
        if reader.pos + size > len(data):
            raise DecodeError(f"section {section_id} extends past end of binary",
                              offset=reader.pos)
        section = _Reader(reader.data, reader.pos, reader.pos + size)
        reader.pos += size
        if section_id != 0:
            if section_id <= last_section:
                raise DecodeError(f"section {section_id} out of order", offset=section.pos)
            if section_id > 11:
                raise DecodeError(f"unknown section id {section_id}", offset=section.pos)
            last_section = section_id
        if section_id == 0:
            name = section.name()
            payload = section.raw(section.end - section.pos)
            if name == "name":
                # Defer: function indices need the import count, which is
                # known by now (imports precede code), so decode immediately.
                # A malformed name section must not reject the module (the
                # spec treats custom-section contents as best-effort): keep
                # it verbatim instead so re-encoding round-trips.
                try:
                    _decode_name_section(module, payload)
                except DecodeError:
                    module.custom_sections.append(CustomSection(name, payload))
            else:
                module.custom_sections.append(CustomSection(name, payload))
        elif section_id == 1:
            for _ in range(section.u32()):
                marker = section.byte()
                if marker != 0x60:
                    raise DecodeError(f"invalid functype marker {marker:#x}")
                params = tuple(section.valtype() for _ in range(section.u32()))
                results = tuple(section.valtype() for _ in range(section.u32()))
                module.types.append(FuncType(params, results))
        elif section_id == 2:
            for _ in range(section.u32()):
                module.imports.append(_decode_import(section))
        elif section_id == 3:
            func_type_idxs = [section.u32() for _ in range(section.u32())]
        elif section_id == 4:
            for _ in range(section.u32()):
                elem = section.byte()
                if elem != 0x70:
                    raise DecodeError(f"invalid table element type {elem:#x}")
                module.tables.append(TableType(section.limits()))
        elif section_id == 5:
            for _ in range(section.u32()):
                module.memories.append(MemoryType(section.limits()))
        elif section_id == 6:
            for _ in range(section.u32()):
                valtype = section.valtype()
                mutable = section.byte() == 0x01
                init = decode_expr(section)
                module.globals.append(Global(GlobalType(valtype, mutable), init))
        elif section_id == 7:
            for _ in range(section.u32()):
                name = section.name()
                kind_byte = section.byte()
                if kind_byte not in _EXPORT_KIND:
                    raise DecodeError(f"invalid export kind {kind_byte:#x}")
                module.exports.append(Export(name, _EXPORT_KIND[kind_byte], section.u32()))
        elif section_id == 8:
            module.start = section.u32()
        elif section_id == 9:
            for _ in range(section.u32()):
                flag = section.byte()
                if flag != 0x00:
                    raise DecodeError(f"unsupported element segment flag {flag:#x}")
                offset = decode_expr(section)
                func_idxs = [section.u32() for _ in range(section.u32())]
                module.elements.append(ElemSegment(offset, func_idxs))
        elif section_id == 10:
            count = section.u32()
            if count != len(func_type_idxs):
                raise DecodeError(
                    f"code section has {count} bodies but function section "
                    f"declares {len(func_type_idxs)}")
            for type_idx in func_type_idxs:
                module.functions.append(_decode_code(section, type_idx))
        elif section_id == 11:
            for _ in range(section.u32()):
                flag = section.byte()
                if flag != 0x00:
                    raise DecodeError(f"unsupported data segment flag {flag:#x}")
                offset = decode_expr(section)
                length = section.u32()
                module.data.append(DataSegment(offset, section.raw(length)))
    if func_type_idxs and not module.functions:
        raise DecodeError("function section without code section")
    return module
