"""Selective instrumentation (paper §2.4.2): only requested groups are
instrumented, groups are independent, and unused groups cost nothing."""

import pytest

from repro.core import (ALL_GROUPS, Analysis, analyze, instrument_module,
                        used_groups)
from repro.core.instrument import InstrumentationConfig
from repro.minic import compile_source
from repro.wasm import encode_module, validate_module
from repro.wasm.errors import WasmError

SOURCE = """
import func print_f64(x: f64);
memory 1;
global g: i32 = 1;
export func main(n: i32) -> f64 {
    var s: f64 = 0.0;
    var i: i32;
    for (i = 0; i < n; i = i + 1) {
        mem_f64[i] = f64(i) * 0.5;
        s = s + mem_f64[i];
        g = g + 1;
    }
    print_f64(s);
    return s;
}
"""


@pytest.fixture
def module(print_linker):
    return compile_source(SOURCE, "sel")


def original_result(module, print_linker):
    from repro.interp import Machine
    instance = Machine().instantiate(module, print_linker)
    return instance.invoke("main", [10])


class TestGroupSelection:
    def test_unknown_group_rejected(self, module):
        with pytest.raises(WasmError, match="unknown hook group"):
            instrument_module(module, groups={"frobnicate"})

    def test_empty_selection_is_identity_behavior(self, module, print_linker):
        result = instrument_module(module, groups=frozenset())
        assert result.hook_count == 0
        validate_module(result.module)
        # no imports added, bodies unchanged in length
        assert result.module.num_imported_functions == module.num_imported_functions
        assert result.module.instruction_count() == module.instruction_count()

    @pytest.mark.parametrize("group", sorted(ALL_GROUPS))
    def test_each_group_alone_is_valid_and_faithful(self, group, module,
                                                    print_linker):
        expected = original_result(module, print_linker)
        result = instrument_module(module, groups={group})
        validate_module(result.module)
        # run it: groups not present in the program produce 0 hooks but
        # must still execute identically
        from repro.core.runtime import WasabiRuntime
        from repro.core.hooks import HOOK_MODULE
        from repro.interp import Machine, Linker
        from repro.wasm.types import F64, FuncType

        class Sink(Analysis):
            pass

        runtime = WasabiRuntime(result, Sink())
        linker = Linker()
        linker.define_function("env", "print_f64", FuncType((F64,), ()),
                               lambda args: None)
        for name, hf in runtime.host_functions().items():
            linker.define(HOOK_MODULE, name, hf)
        instance = Machine().instantiate(result.module, linker)
        runtime.bind(instance)
        assert instance.invoke("main", [10]) == expected

    def test_selective_is_smaller_than_full(self, module):
        full = len(encode_module(instrument_module(module).module))
        only_call = len(encode_module(
            instrument_module(module, groups={"call"}).module))
        original = len(encode_module(module))
        assert original < only_call < full

    def test_hook_counts_grow_with_selection(self, module):
        one = instrument_module(module, groups={"const"}).hook_count
        two = instrument_module(module, groups={"const", "binary"}).hook_count
        assert 0 < one < two


class TestUsedGroups:
    def test_base_analysis_uses_nothing(self):
        assert used_groups(Analysis()) == frozenset()

    def test_single_hook(self):
        class OnlyBinary(Analysis):
            def binary(self, loc, op, a, b, r):
                pass

        assert used_groups(OnlyBinary()) == frozenset({"binary"})

    def test_call_pre_and_post_map_to_call_group(self):
        class Pre(Analysis):
            def call_pre(self, loc, f, args, t):
                pass

        class Post(Analysis):
            def call_post(self, loc, results):
                pass

        assert used_groups(Pre()) == frozenset({"call"})
        assert used_groups(Post()) == frozenset({"call"})

    def test_session_derives_groups_from_analysis(self, module, print_linker):
        class OnlyLoad(Analysis):
            def __init__(self):
                self.loads = 0

            def load(self, loc, op, memarg, value):
                self.loads += 1

        analysis = OnlyLoad()
        session = analyze(module, analysis, linker=print_linker,
                          entry="main", args=(10,))
        assert analysis.loads == 10
        # only load hooks were generated
        assert all(spec.kind == "load" for spec in session.result.info.hooks)


class TestIndependence:
    """Instrumenting a subset must observe exactly what full instrumentation
    observes for those hooks (§2.4.2: instrumentations are independent)."""

    def test_load_events_identical_under_selective_and_full(self, module,
                                                            print_linker):
        class Loads(Analysis):
            def __init__(self):
                self.seen = []

            def load(self, loc, op, memarg, value):
                self.seen.append((loc, op, memarg.addr, value))

        selective = Loads()
        analyze(module, selective, linker=print_linker,
                entry="main", args=(6,))

        full = Loads()
        printed2: list = []
        from repro.interp import Linker
        from repro.wasm.types import F64, FuncType
        linker2 = Linker().define_function(
            "env", "print_f64", FuncType((F64,), ()), lambda a: None)
        analyze(module, full, linker=linker2, groups=ALL_GROUPS,
                entry="main", args=(6,))
        assert selective.seen == full.seen


class TestLocationAblation:
    def test_no_locations_config(self, module, print_linker):
        config = InstrumentationConfig(groups=frozenset({"binary"}),
                                       emit_locations=False)
        result = instrument_module(module, config=config)
        validate_module(result.module)
        smaller = len(encode_module(result.module))
        with_locs = len(encode_module(
            instrument_module(module, groups={"binary"}).module))
        assert smaller < with_locs
