"""The command-line interface: instrument / validate / compile / run / stats."""

import json

import pytest

from repro.cli import main
from repro.wasm import decode_module, encode_module


@pytest.fixture
def wasm_file(tmp_path, fib_module):
    path = tmp_path / "fib.wasm"
    path.write_bytes(encode_module(fib_module))
    return path


@pytest.fixture
def minic_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("""
        import func print_f64(x: f64);
        export func main(n: i32) -> f64 {
            var s: f64 = 0.0;
            var i: i32;
            for (i = 0; i < n; i = i + 1) { s = s + f64(i) * 0.5; }
            print_f64(s);
            return s;
        }
    """)
    return path


class TestInstrument:
    def test_basic(self, wasm_file, tmp_path, capsys):
        out = tmp_path / "out.wasm"
        code = main(["instrument", str(wasm_file), "-o", str(out)])
        assert code == 0
        module = decode_module(out.read_bytes())
        assert module.num_imported_functions > 0  # hooks imported
        assert "hooks generated" in capsys.readouterr().out

    def test_selective(self, wasm_file, tmp_path):
        out_all = tmp_path / "all.wasm"
        out_call = tmp_path / "call.wasm"
        main(["instrument", str(wasm_file), "-o", str(out_all)])
        main(["instrument", str(wasm_file), "-o", str(out_call),
              "--hooks", "call,return"])
        assert out_call.stat().st_size < out_all.stat().st_size

    def test_unknown_hook(self, wasm_file, tmp_path, capsys):
        assert main(["instrument", str(wasm_file), "--hooks", "bogus"]) == 2
        assert "unknown hooks" in capsys.readouterr().err

    def test_metadata(self, wasm_file, tmp_path):
        out = tmp_path / "out.wasm"
        meta = tmp_path / "meta.json"
        main(["instrument", str(wasm_file), "-o", str(out),
              "--metadata", str(meta)])
        data = json.loads(meta.read_text())
        assert data["hooks"] and data["functions"]
        assert data["functions"][0]["name"] == "fib"


class TestValidate:
    def test_valid(self, wasm_file, capsys):
        assert main(["validate", str(wasm_file)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid(self, tmp_path, capsys):
        bad = tmp_path / "bad.wasm"
        bad.write_bytes(b"\x00asm\x01\x00\x00\x00\x63\x01\x00")
        assert main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestObjdumpAndStats:
    def test_objdump(self, wasm_file, capsys):
        assert main(["objdump", str(wasm_file)]) == 0
        out = capsys.readouterr().out
        assert "(module" in out and "get_local" in out

    def test_stats(self, wasm_file, capsys):
        assert main(["stats", str(wasm_file)]) == 0
        out = capsys.readouterr().out
        assert "instructions:" in out and "fib" in out


class TestCompileAndRun:
    def test_compile(self, minic_file, tmp_path, capsys):
        out = tmp_path / "prog.wasm"
        assert main(["compile", str(minic_file), "-o", str(out)]) == 0
        decode_module(out.read_bytes())

    def test_run_uninstrumented(self, minic_file, tmp_path, capsys):
        out = tmp_path / "prog.wasm"
        main(["compile", str(minic_file), "-o", str(out)])
        assert main(["run", str(out), "main", "5"]) == 0
        output = capsys.readouterr().out
        assert "main(5) = [5.0]" in output
        assert "[print] 5.0" in output

    def test_run_with_analysis(self, minic_file, tmp_path, capsys):
        out = tmp_path / "prog.wasm"
        main(["compile", str(minic_file), "-o", str(out)])
        assert main(["run", str(out), "main", "5", "--analysis", "mix"]) == 0
        output = capsys.readouterr().out
        assert "instruction mix:" in output
        assert "f64.add" in output

    def test_run_cryptominer_analysis(self, minic_file, tmp_path, capsys):
        out = tmp_path / "prog.wasm"
        main(["compile", str(minic_file), "-o", str(out)])
        assert main(["run", str(out), "main", "3",
                     "--analysis", "cryptominer"]) == 0
        assert "suspicious: False" in capsys.readouterr().out

    def test_roundtrip_instrument_then_run(self, minic_file, tmp_path, capsys):
        """Instrumented binaries written to disk are self-contained except
        for their hook imports — running them requires the runtime, so the
        CLI run command instruments in-process instead."""
        out = tmp_path / "prog.wasm"
        main(["compile", str(minic_file), "-o", str(out)])
        assert main(["run", str(out), "main", "4", "--analysis", "blocks"]) == 0
        assert "loop" in capsys.readouterr().out
