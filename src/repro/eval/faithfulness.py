"""RQ2: does instrumentation preserve the original behaviour? (paper §4.3)

Three checks, mirroring the paper:

1. run the original and the fully instrumented program and compare all
   observable outputs (return values, printed values, final memory);
2. validate every instrumented module with the static validator
   (the paper uses ``wasm-validate``; we use :mod:`repro.wasm.validation`);
3. do the same over the spec-test corpus, including trap equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.session import AnalysisSession
from ..interp.machine import Machine
from ..wasm.errors import Trap
from ..wasm.module import Module
from ..wasm.validation import validate_module
from .hooks_matrix import make_full_analysis
from .workloads import Workload


@dataclass
class FaithfulnessResult:
    name: str
    outputs_match: bool
    validates: bool
    original_result: object
    instrumented_result: object

    @property
    def ok(self) -> bool:
        return self.outputs_match and self.validates


def run_original(workload: Workload) -> tuple[object, list]:
    """Execute the uninstrumented workload; returns (result, printed)."""
    printed: list = []
    machine = Machine()
    instance = machine.instantiate(workload.module(), workload.linker(printed))
    try:
        result = instance.invoke(workload.entry, workload.args)
    except Trap as trap:
        result = f"trap: {type(trap).__name__}"
    return result, printed


def run_instrumented(workload: Workload,
                     groups: frozenset[str] | None = None) -> tuple[object, list, Module]:
    """Execute the workload under (full, by default) instrumentation."""
    printed: list = []
    session = AnalysisSession(workload.module(), make_full_analysis(),
                              linker=workload.linker(printed), groups=groups)
    try:
        result = session.invoke(workload.entry, workload.args)
    except Trap as trap:
        result = f"trap: {type(trap).__name__}"
    return result, printed, session.result.module


def check_workload(workload: Workload) -> FaithfulnessResult:
    original_result, original_printed = run_original(workload)
    instr_result, instr_printed, instr_module = run_instrumented(workload)
    try:
        validate_module(instr_module)
        validates = True
    except Exception:
        validates = False
    return FaithfulnessResult(
        name=workload.name,
        outputs_match=(original_result == instr_result
                       and original_printed == instr_printed),
        validates=validates,
        original_result=original_result,
        instrumented_result=instr_result,
    )
