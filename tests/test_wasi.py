"""WASI preview1 subset: errno surfacing, fault injection, governance,
and deterministic cross-engine replay.

Pins the PR's acceptance criteria directly:

* every syscall outcome — including every *injected* fault — surfaces to
  the guest as a well-formed WASI errno return, never as a host
  exception escaping the boundary;
* the four ``wasi_io`` workloads produce identical results and identical
  output bytes on both engines, matching pure-Python oracles;
* a recorded seeded-fault run is crash-free and replays bit-identically
  on the *other* engine (memory digests, globals, results, errors);
* an escalated-fault crash bundle replays with the identical
  :class:`~repro.wasm.errors.WasiExhausted` on both engines;
* resource governance degrades gracefully (short write → ENOSPC,
  EMFILE) below the hard :class:`~repro.wasm.errors.ResourceExhausted`
  escalation tier (fd/FS/syscall budgets).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import (EXIT_OK, EXIT_RESOURCE_EXHAUSTED, EXIT_TRAP, main)
from repro.interp import Machine, ResourceLimits
from repro.interp.host import Linker
from repro.interp.replay import Recorder, Replayer, replay_linker
from repro.interp.snapshot import restore_instance, snapshot_instance
from repro.obs import Telemetry
from repro.wasi import (Fault, FaultPlane, WasiContext, WasiFS, errno_name,
                        module_imports_wasi)
from repro.wasi.abi import (ERRNO_BADF, ERRNO_INTR, ERRNO_IO, ERRNO_MFILE,
                            ERRNO_NOENT, ERRNO_NOSPC, ERRNO_SUCCESS,
                            OFLAGS_CREAT, PREOPEN_FD, WHENCE_SET)
from repro.wasm.errors import (ProcExit, ResourceExhausted, Trap,
                               WasiExhausted)
from repro.workloads.wasi_io import (SAMPLE_FILES, SAMPLE_STDIN,
                                     ref_checksum, ref_extract,
                                     ref_line_filter, wasi_io_entry,
                                     wasi_io_module, wasi_io_names)

BOTH_ENGINES = pytest.mark.parametrize(
    "predecode", [True, False], ids=["predecode", "legacy"])


def run_workload(name, predecode=True, faults=None, limits=None,
                 telemetry=None, recorder=None, stdin=SAMPLE_STDIN,
                 files=None):
    module = wasi_io_module(name)
    ctx = WasiContext(args=["prog"], stdin=stdin,
                      files=dict(SAMPLE_FILES if files is None else files),
                      faults=faults, limits=limits, telemetry=telemetry,
                      replay=recorder)
    linker = Linker()
    ctx.register(linker)
    machine = Machine(predecode=predecode, limits=limits, replay=recorder)
    instance = machine.instantiate(module, linker)
    pre = snapshot_instance(instance) if recorder is not None else None
    ctx.bind_memory(instance)
    entry, args = wasi_io_entry(name)
    error = None
    result = None
    try:
        result = instance.invoke(entry, args)
    except Exception as exc:  # noqa: BLE001 - tests classify below
        error = exc
    post = snapshot_instance(instance)
    return {"result": result, "error": error, "ctx": ctx, "pre": pre,
            "post": post, "recorder": recorder, "instance": instance}


def replay_recording(name, recorder, pre, predecode):
    """Replay a recorded run log-driven (no FS, no faults) on an engine."""
    module = wasi_io_module(name)
    replayer = Replayer(recorder.entries)
    ctx = WasiContext(replay=replayer)
    linker = replay_linker(module)
    ctx.register(linker)
    machine = Machine(predecode=predecode, replay=replayer)
    instance = machine.instantiate(module, linker, run_start=False)
    restore_instance(instance, pre)
    ctx.bind_memory(instance)
    entry, args = wasi_io_entry(name)
    error = None
    result = None
    try:
        result = instance.invoke(entry, args)
    except Exception as exc:  # noqa: BLE001
        error = exc
    replayer.finish()
    return {"result": result, "error": error,
            "post": snapshot_instance(instance)}


# -- workload correctness on both engines ------------------------------------


class TestWasiIoWorkloads:
    @BOTH_ENGINES
    def test_line_filter_matches_oracle(self, predecode):
        run = run_workload("line_filter", predecode)
        count, out = ref_line_filter(SAMPLE_STDIN, ord("@"))
        assert run["error"] is None
        assert run["result"] == [count]
        assert run["ctx"].stdout_bytes() == out

    @BOTH_ENGINES
    def test_checksum_matches_oracle(self, predecode):
        run = run_workload("checksum", predecode)
        assert run["error"] is None
        assert run["result"] == [ref_checksum(SAMPLE_STDIN)[0]]
        assert run["ctx"].stdout_bytes() == ref_checksum(SAMPLE_STDIN)[1]

    @BOTH_ENGINES
    def test_extract_reads_preopen_and_writes_back(self, predecode):
        run = run_workload("extract", predecode)
        assert run["error"] is None
        assert run["result"] == [ref_extract(SAMPLE_FILES["data.csv"])[0]]
        # the workload also creates out.txt through path_open(CREAT)
        fs = run["ctx"].fs
        assert "out.txt" in fs.files
        assert fs.files["out.txt"].data == run["ctx"].stdout_bytes()

    def test_engines_agree_bit_for_bit(self):
        for name in wasi_io_names():
            a = run_workload(name, predecode=True)
            b = run_workload(name, predecode=False)
            assert a["result"] == b["result"], name
            assert a["ctx"].stdout_bytes() == b["ctx"].stdout_bytes(), name
            assert a["post"].as_dict() == b["post"].as_dict(), name

    def test_module_imports_wasi_detection(self):
        assert module_imports_wasi(wasi_io_module("checksum"))
        from repro.minic import compile_source
        plain = compile_source(
            "export func f() -> i32 { return 1; }", "plain")
        assert not module_imports_wasi(plain)


# -- errno surfacing and the fault plane --------------------------------------


class TestFaultInjection:
    @BOTH_ENGINES
    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_faults_never_escape_as_host_exceptions(self, predecode,
                                                           seed):
        """Under a high fault rate, guests see errnos and retry or fail
        cleanly; the host boundary never leaks a Python exception."""
        for name in wasi_io_names():
            run = run_workload(name, predecode,
                               faults=FaultPlane(seed=seed, rate=0.35))
            error = run["error"]
            assert error is None or isinstance(error, Trap), (
                f"{name} seed {seed}: host exception escaped: {error!r}")

    def test_fault_schedule_is_deterministic(self):
        fired = []
        for _ in range(2):
            run = run_workload("checksum",
                               faults=FaultPlane(seed=11, rate=0.5))
            fired.append(list(run["ctx"].faults.fired))
        assert fired[0] == fired[1]
        assert fired[0], "a 50% plane over 6+ syscalls should fire"

    def test_explicit_schedule_surfaces_exact_errno(self):
        """A scheduled EIO on the first fd_read comes back to the guest as
        errno 29; the guest's retry loop then gives up cleanly."""
        plane = FaultPlane(schedule={
            ("fd_read", i): Fault(errno=ERRNO_IO) for i in range(32)})
        run = run_workload("checksum", faults=plane)
        assert run["error"] is None
        # i32 results surface as unsigned u32 values.
        assert run["result"] == [(1 << 32) - ERRNO_IO]

    def test_eintr_is_retried_by_the_guest_runtime(self):
        plane = FaultPlane(schedule={("fd_read", 0): Fault(errno=ERRNO_INTR)})
        run = run_workload("checksum", faults=plane)
        assert run["error"] is None
        assert run["result"] == [ref_checksum(SAMPLE_STDIN)[0]]
        assert any("errno=27" in d or "EINTR" in d.upper() or "27" in d
                   for (_, _, d) in run["ctx"].faults.fired)

    def test_short_reads_and_writes_still_converge(self):
        plane = FaultPlane(schedule={
            ("fd_read", i): Fault(short=1) for i in range(0, 64, 2)})
        run = run_workload("checksum", faults=plane)
        assert run["error"] is None
        assert run["result"] == [ref_checksum(SAMPLE_STDIN)[0]]

    def test_escalated_fault_raises_hard_tier(self):
        plane = FaultPlane(schedule={("fd_read", 0): Fault(escalate=True)})
        run = run_workload("checksum", faults=plane)
        assert isinstance(run["error"], WasiExhausted)
        assert isinstance(run["error"], ResourceExhausted)

    def test_clock_skew_fault_keeps_monotonicity(self):
        plane = FaultPlane(schedule={
            ("clock_time_get", 0): Fault(clock_skew_ns=50_000_000)})
        run = run_workload("checksum", faults=plane)
        assert run["error"] is None  # checksum brackets with two clock reads


# -- fd/FS resource governance ------------------------------------------------


class TestGovernance:
    def test_max_file_bytes_short_write_then_enospc(self):
        fs = WasiFS(files={"f": b""}, max_file_bytes=10)
        errno, fd = fs.open_path("f", 0)
        assert errno == ERRNO_SUCCESS
        errno, n = fs.write(fd, b"0123456789abcdef")
        assert errno == ERRNO_SUCCESS and n == 10  # graceful short write
        errno, n = fs.write(fd, b"more")
        assert errno == ERRNO_NOSPC and n == 0

    def test_max_fs_bytes_counts_all_regular_files(self):
        fs = WasiFS(files={"a": b"12345", "b": b""}, max_fs_bytes=8)
        errno, fd = fs.open_path("b", 0)
        assert errno == ERRNO_SUCCESS
        errno, n = fs.write(fd, b"abcdef")
        assert errno == ERRNO_SUCCESS and n == 3
        errno, n = fs.write(fd, b"x")
        assert errno == ERRNO_NOSPC and n == 0

    def test_max_open_fds_yields_emfile(self):
        fs = WasiFS(files={"a": b"", "b": b"", "c": b""}, max_open_fds=2)
        assert fs.open_path("a", 0)[0] == ERRNO_SUCCESS
        assert fs.open_path("b", 0)[0] == ERRNO_SUCCESS
        errno, _ = fs.open_path("c", 0)
        assert errno == ERRNO_MFILE
        # stdio and the preopen dir never count against the bound
        assert fs.close(PREOPEN_FD) == ERRNO_BADF

    def test_missing_file_is_enoent_and_creat_creates(self):
        fs = WasiFS()
        assert fs.open_path("nope", 0)[0] == ERRNO_NOENT
        errno, fd = fs.open_path("new.txt", OFLAGS_CREAT)
        assert errno == ERRNO_SUCCESS
        assert fs.write(fd, b"hi") == (ERRNO_SUCCESS, 2)
        assert fs.seek(fd, 0, WHENCE_SET) == (ERRNO_SUCCESS, 0)
        assert fs.read(fd, 16) == (ERRNO_SUCCESS, b"hi")

    def test_syscall_budget_is_a_hard_tier(self):
        limits = ResourceLimits(max_syscalls=3)
        run = run_workload("checksum", limits=limits)
        assert isinstance(run["error"], WasiExhausted)
        assert run["ctx"].total_syscalls <= 4

    def test_governance_limits_roundtrip_asdict(self):
        from dataclasses import asdict
        limits = ResourceLimits(fuel=10, max_open_fds=4, max_file_bytes=64,
                                max_fs_bytes=256, max_syscalls=99)
        again = ResourceLimits(**asdict(limits))
        assert again == limits


# -- deterministic cross-engine replay ----------------------------------------


class TestCrossEngineReplay:
    @pytest.mark.parametrize("record_predecode", [True, False],
                             ids=["rec-predecode", "rec-legacy"])
    def test_faulted_run_replays_bit_identically_on_other_engine(
            self, record_predecode):
        faults = FaultPlane(seed=3, rate=0.3)
        rec = run_workload("checksum", record_predecode, faults=faults,
                           recorder=Recorder())
        assert rec["error"] is None
        rep = replay_recording("checksum", rec["recorder"], rec["pre"],
                               predecode=not record_predecode)
        assert rep["error"] is None
        assert rep["result"] == rec["result"]
        assert rep["post"].as_dict() == rec["post"].as_dict()

    def test_wasi_calls_recorded_as_wasi_call_entries(self):
        rec = run_workload("extract", recorder=Recorder())
        kinds = {entry["kind"] for entry in rec["recorder"].entries}
        assert kinds == {"wasi_call"}

    def test_escalated_fault_replays_with_identical_error(self):
        faults = FaultPlane(seed=42, rate=0.4,
                            schedule={("fd_read", 1): Fault(escalate=True)})
        rec = run_workload("checksum", True, faults=faults,
                           recorder=Recorder())
        assert isinstance(rec["error"], WasiExhausted)
        rep = replay_recording("checksum", rec["recorder"], rec["pre"],
                               predecode=False)
        assert isinstance(rep["error"], WasiExhausted)
        assert str(rep["error"]) == str(rec["error"])
        assert rep["post"].as_dict() == rec["post"].as_dict()

    def test_proc_exit_replays_with_code(self):
        rec = run_workload("startup", recorder=Recorder())
        # startup(8) exits normally; force the exit path via args
        module = wasi_io_module("startup")
        recorder = Recorder()
        ctx = WasiContext(args=["a", "b", "c"], replay=recorder)
        linker = Linker()
        ctx.register(linker)
        machine = Machine(replay=recorder)
        instance = machine.instantiate(module, linker)
        pre = snapshot_instance(instance)
        ctx.bind_memory(instance)
        with pytest.raises(ProcExit) as excinfo:
            instance.invoke("startup", [0])
        assert excinfo.value.code == 7
        rep_module = wasi_io_module("startup")
        replayer = Replayer(recorder.entries)
        rep_ctx = WasiContext(replay=replayer)
        rep_linker = replay_linker(rep_module)
        rep_ctx.register(rep_linker)
        rep_machine = Machine(predecode=False, replay=replayer)
        rep_instance = rep_machine.instantiate(rep_module, rep_linker,
                                               run_start=False)
        restore_instance(rep_instance, pre)
        rep_ctx.bind_memory(rep_instance)
        with pytest.raises(ProcExit) as rep_excinfo:
            rep_instance.invoke("startup", [0])
        assert rep_excinfo.value.code == 7


# -- CLI integration ----------------------------------------------------------


@pytest.fixture(scope="module")
def wasi_artifacts(tmp_path_factory):
    from repro.wasm import encode_module
    root = tmp_path_factory.mktemp("wasi_cli")
    paths = {}
    for name in wasi_io_names():
        path = root / f"{name}.wasm"
        path.write_bytes(encode_module(wasi_io_module(name)))
        paths[name] = str(path)
    stdin = root / "stdin.txt"
    stdin.write_bytes(SAMPLE_STDIN)
    fs_dir = root / "fs"
    fs_dir.mkdir()
    for fname, data in SAMPLE_FILES.items():
        (fs_dir / fname).write_bytes(data)
    paths["stdin"] = str(stdin)
    paths["fs_dir"] = str(fs_dir)
    paths["root"] = root
    return paths


class TestCli:
    def test_run_with_stdin_prints_guest_stdout(self, wasi_artifacts,
                                                capsys):
        status = main(["run", wasi_artifacts["checksum"], "checksum",
                       "--stdin-file", wasi_artifacts["stdin"]])
        assert status == EXIT_OK
        out = capsys.readouterr().out
        assert ref_checksum(SAMPLE_STDIN)[1].decode() in out

    def test_run_with_fs_dir(self, wasi_artifacts, capsys):
        status = main(["run", wasi_artifacts["extract"], "extract",
                       "--fs-dir", wasi_artifacts["fs_dir"]])
        assert status == EXIT_OK
        assert "105" in capsys.readouterr().out

    def test_proc_exit_nonzero_maps_to_trap_status(self, wasi_artifacts,
                                                   capsys):
        status = main(["run", wasi_artifacts["startup"], "startup", "0"])
        assert status == EXIT_TRAP
        assert "proc_exit(7)" in capsys.readouterr().err

    def test_syscall_budget_maps_to_resource_status(self, wasi_artifacts,
                                                    capsys):
        status = main(["run", wasi_artifacts["checksum"], "checksum",
                       "--stdin-file", wasi_artifacts["stdin"],
                       "--max-syscalls", "2"])
        assert status == EXIT_RESOURCE_EXHAUSTED
        assert "syscall budget" in capsys.readouterr().err

    def test_recorded_faulted_run_replays_on_both_engines(
            self, wasi_artifacts, capsys):
        """The acceptance pin: record a seeded-fault wasi_io run, then
        replay the bundle on each engine with zero divergence."""
        bundle = str(wasi_artifacts["root"] / "bundle")
        status = main(["run", wasi_artifacts["checksum"], "checksum",
                       "--stdin-file", wasi_artifacts["stdin"],
                       "--wasi-fault-seed", "7", "--wasi-fault-rate", "0.3",
                       "--record", bundle])
        assert status == EXIT_OK
        manifest = json.loads(
            (wasi_artifacts["root"] / "bundle" / "manifest.json").read_text())
        assert manifest["wasi"]["faults"]["seed"] == 7
        for engine in ("predecode", "legacy"):
            capsys.readouterr()
            assert main(["replay", bundle, "--engine", engine]) == EXIT_OK
            assert "reproduced" in capsys.readouterr().out

    def test_escalated_bundle_replays_identical_error(self, wasi_artifacts,
                                                      capsys):
        """An escalated-fault crash bundle reproduces its WasiExhausted on
        both engines, bit-identical post state included."""
        bundle = str(wasi_artifacts["root"] / "escalated")
        status = main(["run", wasi_artifacts["checksum"], "checksum",
                       "--stdin-file", wasi_artifacts["stdin"],
                       "--wasi-fault-seed", "13", "--wasi-fault-rate", "0.9",
                       "--wasi-escalate-rate", "1.0", "--record", bundle])
        assert status == EXIT_RESOURCE_EXHAUSTED
        manifest = json.loads(
            (wasi_artifacts["root"] / "escalated" /
             "manifest.json").read_text())
        assert manifest["error"]["type"] == "WasiExhausted"
        for engine in ("predecode", "legacy"):
            capsys.readouterr()
            assert main(["replay", bundle, "--engine", engine]) == EXIT_OK
            assert "WasiExhausted" in capsys.readouterr().out

    def test_fuzz_wasi_faults_smoke(self, capsys):
        assert main(["fuzz", "--mutants", "60", "--wasi-faults"]) == EXIT_OK
        assert "0 escapes" in capsys.readouterr().out


# -- telemetry ----------------------------------------------------------------


class TestTelemetry:
    def test_syscall_histograms_and_counters(self):
        telemetry = Telemetry()
        run = run_workload("checksum", telemetry=telemetry)
        assert run["error"] is None
        rendered = telemetry.snapshot().to_prometheus()
        assert "repro_wasi_syscall_seconds" in rendered
        assert 'syscall="fd_read"' in rendered
        assert "repro_wasi_syscalls_total" in rendered
        assert 'errno="success"' in rendered

    def test_usage_accounting(self):
        run = run_workload("checksum")
        usage = run["ctx"].usage()
        assert usage["syscalls"] == run["ctx"].total_syscalls
        assert usage["bytes_read"] == len(SAMPLE_STDIN)
        assert usage["bytes_written"] == len(ref_checksum(SAMPLE_STDIN)[1])


# -- fuzz corpus purity --------------------------------------------------------


class TestFuzzIntegration:
    def test_default_seed_corpus_is_unchanged(self):
        from repro.eval.faultinject import seed_corpus
        assert set(seed_corpus()) == {"kitchen_sink", "fib", "memory"}

    def test_wasi_corpus_names_and_determinism(self):
        from repro.eval.faultinject import seed_corpus, wasi_corpus
        names = set(wasi_corpus())
        assert names == {f"wasi_{n}" for n in wasi_io_names()}
        assert set(seed_corpus(wasi=True)) == names | set(seed_corpus())
        assert wasi_corpus() == wasi_corpus()

    def test_classify_is_pure_for_wasi_mutants(self):
        from repro.eval.faultinject import classify, wasi_corpus
        binary = wasi_corpus()["wasi_checksum"]
        a = classify(binary)
        b = classify(binary)
        assert a == b
        assert a.outcome == "pass"

    def test_errno_name_helper(self):
        assert errno_name(ERRNO_NOSPC) == "nospc"
        assert errno_name(ERRNO_SUCCESS) == "success"
