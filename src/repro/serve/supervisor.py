"""One supervised worker: subprocess, watchdog, hard kills, classification.

The cooperative :class:`~repro.interp.limits.Meter` bounds *well-behaved*
guests — ones whose unbounded progress still passes through metered charge
points. A service accepting arbitrary modules needs the uncooperative
guarantee too: a request that wedges the interpreter (or the Python
runtime under it), or that commits memory faster than the page-cap
accounting can see, must be stopped from *outside* the process. That is
this module's job:

* each request runs in a recycled worker subprocess
  (:mod:`repro.serve.worker`) connected by a pipe;
* while a request is in flight the supervisor polls the pipe in short
  intervals, enforcing a **hard wall-clock deadline** and an **RSS
  ceiling** (read from ``/proc/<pid>/status``) by SIGKILLing the worker —
  no cooperation required, no cleanup trusted;
* every death is classified into the kill taxonomy —
  ``timeout`` / ``oom`` / ``crash`` — as a :class:`KillReport`. A clean
  guest trap is *not* a kill: the worker catches it and answers with an
  ordinary error response.

Respawn pacing (exponential backoff + jitter) lives here too so the pool
above can stay a pure scheduler.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass


def default_start_context():
    """The ``fork`` multiprocessing context when available (cheap worker
    spawn, shared read-only module cache pages), else the platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for the supervised execution service (pool + daemon + workers)."""

    #: Worker subprocesses. ``0`` forces the degraded in-process path.
    workers: int = 2
    #: Hard wall-clock deadline per request (seconds); requests may lower
    #: or raise it per-call. This is the SIGKILL bound, distinct from (and
    #: typically above) any cooperative ``--timeout`` the request carries.
    request_timeout: float = 30.0
    #: RSS ceiling per worker in MiB; ``None`` disables the check (also
    #: disabled, and reported, where ``/proc`` is unavailable).
    rss_limit_mb: float | None = 1024.0
    #: Watchdog poll interval while a request is in flight.
    poll_interval: float = 0.015
    #: How long to wait for a fresh worker's ready handshake.
    spawn_timeout: float = 20.0
    #: In-request retries when the worker *crashed* (not timeout/oom — those
    #: deterministically consume their budget again).
    max_retries: int = 1
    #: Kills by the same input digest before the breaker quarantines it.
    breaker_threshold: int = 2
    #: Respawn backoff: ``base * 2^attempt`` capped at ``cap``, plus up to
    #: ``jitter`` fraction of random smear so a crash loop across many
    #: workers does not respawn in lockstep.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.25
    #: Respawn attempts before a worker slot is abandoned.
    max_respawn_attempts: int = 5
    #: Recycle a worker after this many served requests (bounds leak
    #: accumulation from repeated hostile inputs); ``None`` never recycles.
    recycle_after: int | None = 256
    #: Artifact-cache directory shared by all workers (``None`` disables).
    cache_dir: str | None = None
    #: Where killed requests' service crash bundles go (``None`` disables).
    crash_dir: str | None = None
    #: Enable the ``__test__`` request ops (hang/alloc/exit/…) used by the
    #: test suite and the CI smoke job to fault workers deterministically.
    allow_test_ops: bool = False

    def backoff_delay(self, attempt: int, rng=None) -> float:
        """Backoff before respawn ``attempt`` (0-based), jitter applied."""
        delay = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        if self.backoff_jitter:
            import random
            rng = rng if rng is not None else random
            delay *= 1.0 + self.backoff_jitter * rng.random()
        return delay


@dataclass
class KillReport:
    """One supervised death, classified.

    ``kill_class`` is ``timeout`` (hard deadline passed), ``oom`` (RSS
    ceiling crossed), or ``crash`` (the worker died on its own — segfault,
    ``os._exit``, unhandled interpreter failure). ``rss_mb`` is the last
    reading that triggered (or preceded) the kill when one was taken.
    """

    kill_class: str
    detail: str
    elapsed: float = 0.0
    rss_mb: float | None = None
    exitcode: int | None = None
    worker_id: int = -1

    def describe(self) -> str:
        parts = [self.detail]
        if self.rss_mb is not None:
            parts.append(f"rss {self.rss_mb:.0f} MiB")
        parts.append(f"after {self.elapsed:.2f}s")
        return f"[{self.kill_class}] " + ", ".join(parts)


def read_rss_mb(pid: int) -> float | None:
    """Resident-set size of a process in MiB via ``/proc``; ``None`` when
    unreadable (process gone, or a platform without procfs)."""
    try:
        with open(f"/proc/{pid}/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        return None
    return None


def rss_monitoring_available() -> bool:
    return read_rss_mb(os.getpid()) is not None


class WorkerSupervisor:
    """Owns one worker subprocess and watches every request it runs.

    ``submit`` returns either the worker's response dict or a
    :class:`KillReport`; it never raises for guest misbehavior. After a
    KillReport the worker is dead — the caller (pool) owns respawning.
    """

    def __init__(self, worker_id: int, config: ServeConfig, ctx=None):
        self.worker_id = worker_id
        self.config = config
        self._ctx = ctx if ctx is not None else default_start_context()
        self.process = None
        self.conn = None
        self.requests_served = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker and wait for its ready handshake."""
        from .worker import worker_main
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        init = {"cache_dir": self.config.cache_dir,
                "allow_test_ops": self.config.allow_test_ops}
        process = self._ctx.Process(
            target=worker_main, args=(child_conn, init),
            name=f"repro-serve-worker-{self.worker_id}", daemon=True)
        process.start()
        child_conn.close()
        self.process, self.conn = process, parent_conn
        self.requests_served = 0
        if not parent_conn.poll(self.config.spawn_timeout):
            self.kill()
            raise OSError(f"worker {self.worker_id} never became ready "
                          f"within {self.config.spawn_timeout}s")
        ready = parent_conn.recv()
        if not (isinstance(ready, dict) and ready.get("ready")):
            self.kill()
            raise OSError(f"worker {self.worker_id} sent a malformed "
                          f"ready handshake: {ready!r}")

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker and reap it. Idempotent."""
        process, conn = self.process, self.conn
        if process is not None and process.pid is not None:
            try:
                os.kill(process.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
            process.join(timeout=5.0)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        self.process = self.conn = None

    def shutdown(self) -> None:
        """Polite stop: ask the worker loop to exit, then reap."""
        if self.conn is not None and self.alive:
            try:
                self.conn.send({"kind": "shutdown"})
                self.process.join(timeout=1.0)
            except (OSError, ValueError):
                pass
        self.kill()

    # -- the supervised request ----------------------------------------------

    def submit(self, request: dict, timeout: float | None = None,
               rss_limit_mb: float | None = ...):
        """Run one request under the watchdog.

        Returns the worker's response dict, or a :class:`KillReport` when
        the watchdog had to kill (deadline / RSS) or the worker died.
        """
        config = self.config
        deadline_budget = timeout if timeout is not None else config.request_timeout
        rss_limit = config.rss_limit_mb if rss_limit_mb is ... else rss_limit_mb
        started = time.monotonic()
        deadline = started + deadline_budget
        conn, process = self.conn, self.process
        if conn is None or process is None or not process.is_alive():
            return KillReport("crash", "worker was already dead at submit",
                              worker_id=self.worker_id)
        try:
            conn.send(request)
        except (OSError, ValueError, BrokenPipeError) as exc:
            self.kill()
            return KillReport("crash", f"worker pipe failed on send: {exc}",
                              elapsed=time.monotonic() - started,
                              worker_id=self.worker_id)
        last_rss: float | None = None
        while True:
            try:
                if conn.poll(config.poll_interval):
                    response = conn.recv()
                    self.requests_served += 1
                    return response
            except (EOFError, OSError):
                exitcode = process.exitcode
                self.kill()
                return KillReport(
                    "crash",
                    f"worker died mid-request (exit code {exitcode})",
                    elapsed=time.monotonic() - started, rss_mb=last_rss,
                    exitcode=exitcode, worker_id=self.worker_id)
            now = time.monotonic()
            if not process.is_alive():
                # drain a response racing the death notification
                if conn.poll(0):
                    continue
                exitcode = process.exitcode
                self.kill()
                return KillReport(
                    "crash",
                    f"worker died mid-request (exit code {exitcode})",
                    elapsed=now - started, rss_mb=last_rss,
                    exitcode=exitcode, worker_id=self.worker_id)
            if now >= deadline:
                self.kill()
                return KillReport(
                    "timeout",
                    f"request exceeded its hard deadline of "
                    f"{deadline_budget:g}s", elapsed=now - started,
                    rss_mb=last_rss, worker_id=self.worker_id)
            if rss_limit is not None:
                rss = read_rss_mb(process.pid)
                if rss is not None:
                    last_rss = rss
                    if rss > rss_limit:
                        self.kill()
                        return KillReport(
                            "oom",
                            f"worker RSS crossed the {rss_limit:g} MiB "
                            f"ceiling", elapsed=time.monotonic() - started,
                            rss_mb=rss, worker_id=self.worker_id)
