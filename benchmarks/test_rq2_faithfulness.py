"""RQ2 (§4.3) as a benchmark: faithfulness + validation over the whole suite.

The paper compares program outputs before/after full instrumentation for
all 32 programs and runs wasm-validate on every instrumented binary, plus
the 63-program spec suite. We report the same counts over our suite
(30 PolyBench + 2 real-world stand-ins + the generated spec corpus).
"""

from __future__ import annotations

from repro.core import instrument_module
from repro.eval import (check_workload, make_full_analysis,
                        polybench_workloads, realworld_workloads, render_table)
from repro.interp import Linker, Machine
from repro.wasm import Trap, validate_module
from repro.workloads.spec_corpus import corpus


def test_rq2(benchmark, write_report):
    rows = []
    failures = []
    workloads = polybench_workloads() + realworld_workloads()
    for workload in workloads:
        result = check_workload(workload)
        if not result.ok:
            failures.append(workload.name)
    rows.append(["application programs", len(workloads),
                 len(workloads) - len(failures)])

    corpus_ok = 0
    programs = corpus()
    machine = Machine()
    for program in programs:
        result = instrument_module(program.module)
        validate_module(result.module)
        from repro.core.runtime import WasabiRuntime
        from repro.core.hooks import HOOK_MODULE

        runtime = WasabiRuntime(result, make_full_analysis())
        linker = Linker()
        for name, hf in runtime.host_functions().items():
            linker.define(HOOK_MODULE, name, hf)
        original = machine.instantiate(program.module)
        instrumented = machine.instantiate(result.module, linker)
        runtime.bind(instrumented)
        try:
            expected = original.invoke(program.entry, program.args)
            actual = instrumented.invoke(program.entry, program.args)
            corpus_ok += expected == actual
        except Trap:
            try:
                instrumented.invoke(program.entry, program.args)
            except Trap:
                corpus_ok += 1
    rows.append(["spec-corpus programs", len(programs), corpus_ok])

    report = render_table(
        ["Suite", "Programs", "Faithful + valid"], rows,
        title="RQ2: faithfulness of execution (paper §4.3)")
    write_report("rq2_faithfulness", report)

    assert not failures, f"unfaithful workloads: {failures}"
    assert corpus_ok == len(programs)

    workload = polybench_workloads(["trisolv"])[0]
    benchmark.pedantic(lambda: check_workload(workload).ok, rounds=2,
                       iterations=1)
