"""RQ5: runtime overhead per hook group (paper Figure 9).

Runs each workload uninstrumented and once per instrumentation
configuration (each hook group alone, plus all hooks), with empty
analyses attached — measuring the cost of the instrumentation machinery
itself, exactly as the paper (and Jalangi's / RoadRunner's empty-analysis
baselines) do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.session import AnalysisSession
from ..interp.machine import Machine
from .hooks_matrix import FIGURE_GROUPS, make_full_analysis, make_group_analysis
from .workloads import Workload


@dataclass
class OverheadReport:
    name: str
    config: str
    baseline_seconds: float
    instrumented_seconds: float

    @property
    def relative_runtime(self) -> float:
        """1.0x = no overhead (the paper's y-axis)."""
        if self.baseline_seconds == 0:
            return float("inf")
        return self.instrumented_seconds / self.baseline_seconds


def _time_run(invoke, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        invoke()
        best = min(best, time.perf_counter() - start)
    return best


def baseline_runtime(workload: Workload, repeats: int = 3,
                     predecode: bool | None = None) -> float:
    """Uninstrumented runtime; ``predecode`` selects the engine
    (None = the :envvar:`REPRO_PREDECODE` default)."""
    machine = Machine(predecode=predecode)
    instance = machine.instantiate(workload.module(), workload.linker())
    return _time_run(lambda: instance.invoke(workload.entry, workload.args),
                     repeats)


def instrumented_runtime(workload: Workload, config: str,
                         repeats: int = 3,
                         predecode: bool | None = None) -> float:
    if config == "all":
        analysis = make_full_analysis()
        groups = None
    else:
        analysis = make_group_analysis(config)
        groups = frozenset({config})
    session = AnalysisSession(workload.module(), analysis,
                              linker=workload.linker(), groups=groups,
                              machine=Machine(predecode=predecode))
    return _time_run(lambda: session.invoke(workload.entry, workload.args),
                     repeats)


def overhead_sweep(workload: Workload, configs: list[str] | None = None,
                   repeats: int = 3, include_all: bool = True,
                   predecode: bool | None = None) -> list[OverheadReport]:
    """Relative runtime for every hook group (Figure 9's x-axis)."""
    baseline = baseline_runtime(workload, repeats, predecode=predecode)
    reports = []
    for config in (configs or FIGURE_GROUPS):
        elapsed = instrumented_runtime(workload, config, repeats,
                                       predecode=predecode)
        reports.append(OverheadReport(workload.name, config, baseline, elapsed))
    if include_all:
        elapsed = instrumented_runtime(workload, "all", repeats,
                                       predecode=predecode)
        reports.append(OverheadReport(workload.name, "all", baseline, elapsed))
    return reports
