"""WASI preview1 subset: deterministic, fault-injectable, replayable I/O.

Public surface:

* :class:`WasiContext` — the host module; register into a linker, bind
  the instance memory, run.
* :class:`WasiFS` / :class:`WasiFile` — the deterministic in-memory FS.
* :class:`FaultPlane` / :class:`Fault` — the syscall fault-injection
  plane (seeded schedules, explicit schedules, predicates).
* :data:`WASI_MODULE` and the errno constants in :mod:`repro.wasi.abi`.
"""

from .abi import WASI_MODULE, errno_name
from .faults import Fault, FaultPlane
from .fs import WasiFile, WasiFS
from .preview1 import WasiContext, module_imports_wasi

__all__ = ["WASI_MODULE", "errno_name", "Fault", "FaultPlane", "WasiFile",
           "WasiFS", "WasiContext", "module_imports_wasi"]
