"""Host-boundary (cross-language) interaction analysis.

The paper's future-work section (§6) envisions *cross-language dynamic
analysis* for applications that span WebAssembly and its JavaScript host.
The part observable from the WebAssembly side is the host boundary, and
this analysis profiles it: every call into an imported (host) function,
the values that cross, and the linear-memory regions the program touches
around those calls — the data a cross-language analysis would join with a
host-side trace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.analysis import Analysis, Location
from ..core.metadata import ModuleInfo


@dataclass
class BoundaryCrossing:
    """One call from WebAssembly into the host."""

    location: Location
    callee: int
    callee_name: str
    args: tuple
    results: tuple | None = None    # filled by the matching call_post


class HostBoundaryAnalysis(Analysis):
    """Profiles Wasm→host calls and the memory activity between them.

    ``module_info`` must be bound (before or right after the session is
    created) so imported functions can be distinguished from defined ones.
    """

    def __init__(self, module_info: ModuleInfo | None = None):
        self.module_info = module_info
        self.crossings: list[BoundaryCrossing] = []
        self.calls_per_import: Counter[str] = Counter()
        self._pending: list[BoundaryCrossing | None] = []
        #: bytes of memory written since the previous host call — a proxy
        #: for "data prepared for the host" (e.g. buffers passed by pointer)
        self._bytes_since_crossing = 0
        self.bytes_written_between_crossings: list[int] = []

    def bind_module_info(self, module_info: ModuleInfo) -> None:
        self.module_info = module_info

    def _is_import(self, func: int) -> bool:
        if self.module_info is None or func < 0:
            return False
        functions = self.module_info.functions
        return 0 <= func < len(functions) and functions[func].imported

    def call_pre(self, location, func, args, table_index):
        if self._is_import(func):
            crossing = BoundaryCrossing(
                location, func, self.module_info.func_name(func), tuple(args))
            self.crossings.append(crossing)
            self.calls_per_import[crossing.callee_name] += 1
            self.bytes_written_between_crossings.append(self._bytes_since_crossing)
            self._bytes_since_crossing = 0
            self._pending.append(crossing)
        else:
            self._pending.append(None)

    def call_post(self, location, results):
        if self._pending:
            crossing = self._pending.pop()
            if crossing is not None:
                crossing.results = tuple(results)

    def store(self, location, op, memarg, value):
        width = 4
        if op.endswith(("8",)):
            width = 1
        elif op.endswith("16"):
            width = 2
        elif op.startswith(("i64", "f64")) and not op.endswith("32"):
            width = 8
        self._bytes_since_crossing += width

    # -- reporting ------------------------------------------------------------

    def total_crossings(self) -> int:
        return len(self.crossings)

    def values_passed_to_host(self) -> int:
        return sum(len(c.args) for c in self.crossings)

    def chattiest_imports(self, n: int = 5) -> list[tuple[str, int]]:
        return self.calls_per_import.most_common(n)

    def report(self) -> str:
        lines = [f"host-boundary crossings: {self.total_crossings()}"]
        for name, count in self.calls_per_import.most_common():
            lines.append(f"  {name}: {count} calls")
        lines.append(f"values passed to host: {self.values_passed_to_host()}")
        return "\n".join(lines)
