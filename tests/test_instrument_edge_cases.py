"""Instrumenter edge cases: dead code, empty bodies, i64 everywhere,
imports-only modules, deep nesting, multiple memories of hooks."""


from repro.core import Analysis, AnalysisSession, analyze, instrument_module
from repro.eval import make_full_analysis
from repro.interp import Machine
from repro.minic import compile_source
from repro.wasm import validate_module
from repro.wasm.builder import ModuleBuilder
from repro.wasm.module import BrTable
from repro.wasm.types import I32, I64, FuncType


def faithful(module, entry, args=()):
    """Assert instrumented behaviour matches the original; return session."""
    expected = Machine().instantiate(module).invoke(entry, args)
    session = AnalysisSession(module, make_full_analysis())
    assert session.invoke(entry, args) == expected
    validate_module(session.result.module)
    return session


class TestDeadCode:
    def test_code_after_return_not_instrumented_but_kept(self):
        builder = ModuleBuilder()
        fb = builder.function((), (I32,), export="f")
        fb.i32_const(1)
        fb.emit("return")
        fb.i32_const(99)        # dead
        fb.emit("drop")         # dead polymorphic op
        fb.finish()
        session = faithful(builder.build(), "f")
        # the dead drop did not force a hook
        assert all(spec.kind != "drop" for spec in session.result.info.hooks)

    def test_code_after_unconditional_br(self):
        builder = ModuleBuilder()
        fb = builder.function((), (I32,), export="f")
        fb.block()
        fb.br(0)
        fb.i32_const(5)
        fb.emit("drop")
        fb.end()
        fb.i32_const(2)
        fb.finish()
        faithful(builder.build(), "f")

    def test_block_nested_in_dead_code(self):
        builder = ModuleBuilder()
        fb = builder.function((), (I32,), export="f")
        fb.i32_const(3)
        fb.emit("return")
        fb.block()              # dead block: control tracking must survive
        fb.emit("nop")
        fb.end()
        fb.finish()
        faithful(builder.build(), "f")

    def test_unreachable_then_polymorphic_stack(self):
        builder = ModuleBuilder()
        fb = builder.function((), (I32,), export="f")
        fb.block(I32)
        fb.i32_const(8)
        fb.br(0)
        fb.emit("i32.add")      # dead; types polymorphically
        fb.end()
        fb.finish()
        faithful(builder.build(), "f")


class TestDegenerateShapes:
    def test_empty_void_function(self):
        builder = ModuleBuilder()
        fb = builder.function((), (), export="f")
        fb.finish()
        session = faithful(builder.build(), "f")
        kinds = {spec.kind for spec in session.result.info.hooks}
        assert "begin" in kinds and "end" in kinds and "return" in kinds

    def test_imports_only_module(self):
        builder = ModuleBuilder()
        builder.import_function("env", "f", FuncType((), ()))
        module = builder.build()
        result = instrument_module(module)
        assert result.hook_count == 0
        validate_module(result.module)

    def test_deeply_nested_blocks(self):
        builder = ModuleBuilder()
        fb = builder.function((), (I32,), export="f")
        depth = 40
        for _ in range(depth):
            fb.block()
        fb.i32_const(1)
        fb.br_if(depth - 1)     # jump out of almost everything
        for _ in range(depth):
            fb.end()
        fb.i32_const(7)
        fb.finish()
        session = faithful(builder.build(), "f")

    def test_many_temps_reused(self):
        # dozens of binary ops in sequence: the temp pool keeps locals small
        builder = ModuleBuilder()
        fb = builder.function((I32,), (I32,), export="f")
        fb.get_local(0)
        for i in range(40):
            fb.i32_const(i)
            fb.emit("i32.add")
        fb.finish()
        module = builder.build()
        result = instrument_module(module, groups={"binary"})
        validate_module(result.module)
        # two input temps + one result temp, reused across all 40 sites
        assert len(result.module.functions[0].locals) <= 4


class TestI64Paths:
    def test_i64_through_every_hook_kind(self):
        module = compile_source("""
            memory 1;
            global g: i64 = 7;
            func pass_through(x: i64) -> i64 { return x; }
            export func f(x: i64) -> i64 {
                var t: i64 = x * 3L;
                mem_i64[2] = t;
                g = mem_i64[2] + g;
                var dropped: i64 = pass_through(g);
                dropped;
                return select(i32(x & 1L), g, t);
            }
        """)
        value = (1 << 61) + 12345
        session = faithful(module, "f", (value,))
        kinds = {(s.kind, s.payload) for s in session.result.info.hooks}
        assert ("drop", (I64,)) in kinds
        assert ("select", (I64,)) in kinds
        assert ("local", ("set_local", I64)) in kinds
        assert ("global", ("get_global", I64)) in kinds

    def test_i64_extremes_cross_boundary(self):
        module = compile_source(
            "export func f(x: i64) -> i64 { return x; }")
        seen = []

        class Watch(Analysis):
            def local(self, loc, op, idx, value):
                seen.append(value)

        for value in [0, -1, 2 ** 63 - 1, -(2 ** 63), 1 << 32, -(1 << 32)]:
            seen.clear()
            analyze(module, Watch(), entry="f", args=(value,))
            assert seen == [value]


class TestBrTableEdge:
    def test_br_table_single_default(self):
        builder = ModuleBuilder()
        fb = builder.function((I32,), (I32,), export="f")
        fb.block()
        fb.get_local(0)
        fb.emit("br_table", br_table=BrTable((), 0))
        fb.end()
        fb.i32_const(11)
        fb.finish()
        faithful(builder.build(), "f", (5,))

    def test_br_table_to_loop_header(self):
        builder = ModuleBuilder()
        fb = builder.function((I32,), (I32,), export="f")
        counter = fb.add_local(I32)
        fb.block()
        fb.loop()
        fb.get_local(counter)
        fb.i32_const(1)
        fb.emit("i32.add")
        fb.tee_local(counter)
        fb.get_local(0)
        fb.emit("i32.ge_u")
        fb.br_if(1)
        fb.i32_const(0)
        fb.emit("br_table", br_table=BrTable((0,), 1))  # 0 -> loop again
        fb.end()
        fb.end()
        fb.get_local(counter)
        fb.finish()
        session = faithful(builder.build(), "f", (5,))
        assert session.invoke("f", [5]) == [5]


class TestStartInstrumentation:
    def test_start_function_instrumented(self):
        module = compile_source("""
            global g: i32 = 0;
            func init() { g = 41; }
            start init;
            export func get() -> i32 { return g + 1; }
        """)
        events = []

        class Watch(Analysis):
            def start(self):
                events.append("start")

            def global_(self, loc, op, idx, value):
                events.append((op, value))

        session = analyze(module, Watch())
        assert events[0] == "start"
        assert ("set_global", 41) in events
        assert session.invoke("get") == [42]

    def test_start_remapped_in_instrumented_module(self):
        module = compile_source("""
            global g: i32 = 0;
            func init() { g = 1; }
            start init;
            export func get() -> i32 { return g; }
        """)
        result = instrument_module(module)
        assert result.module.start == module.start + result.hook_count
