"""A WAT-style text printer for modules and function bodies.

Intended for debugging, examples, and golden tests — it produces readable,
indented output in the spirit of the WebAssembly text format (linear style,
matching the paper's listings such as Figure 4), not a spec-conformant
S-expression printer.
"""

from __future__ import annotations

from .module import Instr, Module
from .types import GlobalType, MemoryType, TableType


def format_instr(instr: Instr) -> str:
    return str(instr)


def format_body(body: list[Instr], indent: str = "  ") -> str:
    """Render a flat instruction list with block-structure indentation."""
    lines: list[str] = []
    depth = 1
    for instr in body:
        if instr.op in ("end", "else"):
            depth = max(depth - 1, 0)
        lines.append(indent * depth + format_instr(instr))
        if instr.info.is_block_start or instr.op == "else":
            depth += 1
    return "\n".join(lines)


def format_function(module: Module, func_idx: int) -> str:
    """Render one defined function with its signature and locals."""
    func = module.function_at(func_idx)
    if func is None:
        imp = module.imported_functions()[func_idx]
        functype = module.types[imp.desc]
        return f'(import "{imp.module}" "{imp.name}" (func {func_idx} {functype}))'
    functype = module.types[func.type_idx]
    header = f"(func {module.func_name(func_idx)} {functype}"
    if func.locals:
        header += " (local " + " ".join(str(t) for t in func.locals) + ")"
    return header + "\n" + format_body(func.body) + "\n)"


def format_module(module: Module) -> str:
    """Render a whole module."""
    parts: list[str] = ["(module" + (f" ${module.name}" if module.name else "")]
    for i, functype in enumerate(module.types):
        parts.append(f"  (type {i} {functype})")
    for imp in module.imports:
        desc = imp.desc
        if isinstance(desc, int):
            what = f"(func (type {desc}))"
        elif isinstance(desc, TableType):
            what = f"(table {desc.limits.minimum} funcref)"
        elif isinstance(desc, MemoryType):
            what = f"(memory {desc.limits.minimum})"
        elif isinstance(desc, GlobalType):
            what = f"(global {'mut ' if desc.mutable else ''}{desc.valtype})"
        else:  # pragma: no cover
            what = repr(desc)
        parts.append(f'  (import "{imp.module}" "{imp.name}" {what})')
    for memory in module.memories:
        maximum = memory.limits.maximum
        parts.append(f"  (memory {memory.limits.minimum}"
                     + (f" {maximum}" if maximum is not None else "") + ")")
    for table in module.tables:
        parts.append(f"  (table {table.limits.minimum} funcref)")
    for i, glob in enumerate(module.globals):
        init = " ".join(format_instr(instr) for instr in glob.init)
        mut = "mut " if glob.type.mutable else ""
        parts.append(f"  (global {i} ({mut}{glob.type.valtype}) ({init}))")
    n_imported = module.num_imported_functions
    for i in range(len(module.functions)):
        body = format_function(module, n_imported + i)
        parts.append("  " + body.replace("\n", "\n  "))
    for export in module.exports:
        parts.append(f'  (export "{export.name}" ({export.kind} {export.idx}))')
    if module.start is not None:
        parts.append(f"  (start {module.start})")
    for segment in module.elements:
        offset = " ".join(format_instr(i) for i in segment.offset)
        funcs = " ".join(map(str, segment.func_idxs))
        parts.append(f"  (elem ({offset}) {funcs})")
    for segment in module.data:
        offset = " ".join(format_instr(i) for i in segment.offset)
        parts.append(f"  (data ({offset}) {len(segment.data)} bytes)")
    parts.append(")")
    return "\n".join(parts)
