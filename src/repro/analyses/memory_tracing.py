"""Memory access tracing (paper Table 4, row 8).

Records all loads and stores for later offline analysis, e.g. to detect
cache-unfriendly access patterns. Uses only the ``load`` and ``store``
hooks (11 LOC in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.analysis import Analysis, Location, MemArg


@dataclass(frozen=True)
class Access:
    """One recorded memory access."""

    kind: str            # 'load' | 'store'
    op: str              # e.g. 'f64.load'
    address: int         # effective address (addr + offset)
    value: int | float
    location: Location


class MemoryTracer(Analysis):
    """Appends every access to an in-memory trace."""

    def __init__(self, max_accesses: int | None = None):
        self.trace: list[Access] = []
        self.max_accesses = max_accesses
        self.truncated = False

    def _record(self, kind: str, location: Location, op: str,
                memarg: MemArg, value: int | float) -> None:
        if self.max_accesses is not None and len(self.trace) >= self.max_accesses:
            self.truncated = True
            return
        self.trace.append(Access(kind, op, memarg.addr + memarg.offset,
                                 value, location))

    def load(self, location, op, memarg, value):
        self._record("load", location, op, memarg, value)

    def store(self, location, op, memarg, value):
        self._record("store", location, op, memarg, value)

    # offline analysis helpers ---------------------------------------------------

    def unique_addresses(self) -> int:
        return len({access.address for access in self.trace})

    def read_write_ratio(self) -> float:
        reads = sum(1 for a in self.trace if a.kind == "load")
        writes = len(self.trace) - reads
        return reads / writes if writes else float("inf")

    def stride_histogram(self) -> dict[int, int]:
        """Distribution of address deltas between consecutive accesses —
        small strides indicate cache-friendly sequential access."""
        histogram: dict[int, int] = {}
        for prev, curr in zip(self.trace, self.trace[1:]):
            stride = curr.address - prev.address
            histogram[stride] = histogram.get(stride, 0) + 1
        return histogram

    def hot_addresses(self, n: int = 10) -> list[tuple[int, int]]:
        counts: dict[int, int] = {}
        for access in self.trace:
            counts[access.address] = counts.get(access.address, 0) + 1
        return sorted(counts.items(), key=lambda kv: -kv[1])[:n]
