"""Resource governance: fuel, deadlines, caps, and trap-state hygiene.

Covers the ResourceLimits plumbing through Machine and AnalysisSession on
both engines, the per-invocation budget semantics (a fresh invoke after an
exhaustion trap gets a fresh budget), and the memory.grow bounds.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Analysis, AnalysisSession
from repro.interp import Linker, Machine, Memory, ResourceLimits
from repro.interp.limits import Meter, ResourceUsage
from repro.minic import compile_source
from repro.wasm import (DeadlineExceeded, ExhaustionError, FuelExhausted,
                        ResourceExhausted, Trap)
from repro.wasm.builder import ModuleBuilder
from repro.wasm.types import I32, Limits

ENGINES = [True, False]


@pytest.fixture
def spin_module():
    """A bounded loop: spin(n) iterates n times."""
    return compile_source("""
        export func spin(n: i32) -> i32 {
            var i: i32 = 0;
            var acc: i32 = 0;
            while (i < n) {
                acc = acc + i;
                i = i + 1;
            }
            return acc;
        }
    """, "spin")


@pytest.fixture
def recurse_module():
    return compile_source("""
        export func down(n: i32) -> i32 {
            if (n <= 0) { return 0; }
            return down(n - 1) + 1;
        }
    """, "recurse")


@pytest.fixture
def grow_module():
    return compile_source("""
        memory 1;
        export func grow(delta: i32) -> i32 {
            return memory_grow(delta);
        }
        export func size() -> i32 {
            return memory_size();
        }
    """, "grow")


class TestFuel:
    @pytest.mark.parametrize("predecode", ENGINES)
    def test_fuel_exhaustion_traps(self, spin_module, predecode):
        machine = Machine(predecode=predecode,
                          limits=ResourceLimits(fuel=100))
        instance = machine.instantiate(spin_module, Linker())
        with pytest.raises(FuelExhausted):
            instance.invoke("spin", [1_000_000])

    @pytest.mark.parametrize("predecode", ENGINES)
    def test_enough_fuel_succeeds(self, spin_module, predecode):
        machine = Machine(predecode=predecode,
                          limits=ResourceLimits(fuel=10_000))
        instance = machine.instantiate(spin_module, Linker())
        assert instance.invoke("spin", [100]) == [4950]

    def test_fuel_is_engine_consistent(self, spin_module, recurse_module):
        """Both engines must exhaust the same budget at the same point."""
        for module, entry, arg in ((spin_module, "spin", 10_000),
                                   (recurse_module, "down", 400)):
            exhaustion_points = []
            for predecode in ENGINES:
                for fuel in (57, 500, 1311):
                    machine = Machine(predecode=predecode,
                                      limits=ResourceLimits(fuel=fuel))
                    instance = machine.instantiate(module, Linker())
                    try:
                        instance.invoke(entry, [arg])
                        outcome = ("done", machine.resource_usage().fuel_spent)
                    except FuelExhausted:
                        outcome = ("exhausted", fuel)
                    exhaustion_points.append((predecode, fuel, outcome))
            by_fuel = {}
            for predecode, fuel, outcome in exhaustion_points:
                by_fuel.setdefault(fuel, set()).add(outcome)
            for fuel, outcomes in by_fuel.items():
                assert len(outcomes) == 1, (
                    f"engines disagree at fuel={fuel}: {outcomes}")

    @pytest.mark.parametrize("predecode", ENGINES)
    def test_fuel_rearms_per_invocation(self, spin_module, predecode):
        """Fuel is a per-top-level-invocation budget, not a machine total."""
        machine = Machine(predecode=predecode,
                          limits=ResourceLimits(fuel=500))
        instance = machine.instantiate(spin_module, Linker())
        with pytest.raises(FuelExhausted):
            instance.invoke("spin", [1_000_000])
        # the same call that just exhausted now has a full budget again
        assert instance.invoke("spin", [100]) == [4950]
        assert instance.invoke("spin", [100]) == [4950]

    def test_usage_tracks_cumulative_fuel(self, spin_module):
        machine = Machine(limits=ResourceLimits(fuel=100_000))
        instance = machine.instantiate(spin_module, Linker())
        instance.invoke("spin", [10])
        first = machine.resource_usage().fuel_spent
        instance.invoke("spin", [10])
        assert machine.resource_usage().fuel_spent == 2 * first
        assert first > 10  # at least one event per iteration


class TestDeadline:
    @pytest.mark.parametrize("predecode", ENGINES)
    def test_deadline_aborts_long_run(self, spin_module, predecode):
        machine = Machine(predecode=predecode,
                          limits=ResourceLimits(deadline_seconds=0.05))
        instance = machine.instantiate(spin_module, Linker())
        with pytest.raises(DeadlineExceeded):
            instance.invoke("spin", [100_000_000])

    def test_deadline_rearms_per_invocation(self, spin_module):
        machine = Machine(limits=ResourceLimits(deadline_seconds=0.05))
        instance = machine.instantiate(spin_module, Linker())
        with pytest.raises(DeadlineExceeded):
            instance.invoke("spin", [100_000_000])
        assert instance.invoke("spin", [10]) == [45]

    def test_deadline_uses_injected_clock(self):
        ticks = iter(range(0, 10_000))
        meter = Meter(ResourceLimits(deadline_seconds=5.0),
                      clock=lambda: next(ticks))
        with pytest.raises(DeadlineExceeded):
            for _ in range(10_000):
                meter.enter_call(1)


class TestStackAndDepth:
    @pytest.mark.parametrize("predecode", ENGINES)
    def test_max_call_depth_override(self, recurse_module, predecode):
        machine = Machine(predecode=predecode,
                          limits=ResourceLimits(max_call_depth=50))
        instance = machine.instantiate(recurse_module, Linker())
        assert instance.invoke("down", [30]) == [30]
        with pytest.raises(ExhaustionError):
            instance.invoke("down", [100])

    def test_peak_depth_reported(self, recurse_module):
        machine = Machine(limits=ResourceLimits(fuel=10_000))
        instance = machine.instantiate(recurse_module, Linker())
        instance.invoke("down", [25])
        assert machine.resource_usage().peak_depth == 26

    def test_max_value_stack(self, spin_module):
        # the spin loop keeps a tiny stack; a bound of 0 can only trip if
        # the meter actually checks heights at branch events
        machine = Machine(limits=ResourceLimits(max_value_stack=100))
        instance = machine.instantiate(spin_module, Linker())
        assert instance.invoke("spin", [50]) == [1225]


class TestMemoryBounds:
    def test_grow_at_declared_max(self):
        memory = Memory(Limits(1, 2))
        assert memory.grow(1) == 1
        assert memory.grow(1) == -1  # past declared maximum
        assert memory.size_pages == 2

    def test_grow_by_zero(self):
        memory = Memory(Limits(1, 1))
        assert memory.grow(0) == 1
        assert memory.size_pages == 1

    def test_grow_past_spec_hard_cap(self):
        memory = Memory(Limits(1))
        assert memory.grow(65536) == -1  # 1 + 65536 > 65536 pages

    def test_grow_negative_delta(self):
        memory = Memory(Limits(2))
        assert memory.grow(-1) == -1
        assert memory.size_pages == 2

    def test_policy_cap_tighter_than_declared(self):
        memory = Memory(Limits(1, 10), policy_max_pages=3)
        assert memory.grow(2) == 1
        assert memory.grow(1) == -1  # would reach 4 > policy cap 3
        assert memory.size_pages == 3

    @pytest.mark.parametrize("predecode", ENGINES)
    def test_grow_under_machine_limits(self, grow_module, predecode):
        machine = Machine(predecode=predecode,
                          limits=ResourceLimits(max_memory_pages=2))
        instance = machine.instantiate(grow_module, Linker())
        assert instance.invoke("grow", [1]) == [1]   # 1 -> 2 pages, ok
        assert instance.invoke("grow", [1])[0] == 0xFFFFFFFF  # -1 as u32
        assert instance.invoke("size", []) == [2]

    def test_initial_memory_over_cap_rejected(self, grow_module):
        machine = Machine(limits=ResourceLimits(max_memory_pages=0))
        with pytest.raises(ResourceExhausted):
            machine.instantiate(grow_module, Linker())


class TestTrapHygiene:
    """After any trap, the machine is reusable and internally clean."""

    @pytest.mark.parametrize("predecode", ENGINES)
    @pytest.mark.parametrize("setup", ["fuel", "deadline", "depth", "trap"])
    def test_fresh_invoke_after_trap(self, spin_module, recurse_module,
                                     predecode, setup):
        if setup == "fuel":
            limits, module, entry, bad = (
                ResourceLimits(fuel=100), spin_module, "spin", [10**6])
        elif setup == "deadline":
            limits, module, entry, bad = (
                ResourceLimits(deadline_seconds=0.02), spin_module, "spin",
                [10**8])
        elif setup == "depth":
            limits, module, entry, bad = (
                ResourceLimits(max_call_depth=20), recurse_module, "down",
                [100])
        else:
            limits, module, entry, bad = (None, recurse_module, "down",
                                          [10**6])
        machine = Machine(predecode=predecode, limits=limits)
        instance = machine.instantiate(module, Linker())
        with pytest.raises(Trap):
            instance.invoke(entry, bad)
        assert machine._depth == 0
        good = [10] if entry == "spin" else [5]
        expected = [45] if entry == "spin" else [5]
        assert instance.invoke(entry, good) == expected
        assert machine._depth == 0

    @pytest.mark.parametrize("predecode", ENGINES)
    # the module fixture is read-only (each example builds a new Machine),
    # so sharing it across examples is safe
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(fuel=st.integers(min_value=1, max_value=2000),
           arg=st.integers(min_value=0, max_value=500))
    def test_invariants_hold_for_any_budget(self, spin_module, predecode,
                                            fuel, arg):
        """Hypothesis: whatever budget and input, depth returns to 0 and a
        follow-up invoke computes the correct result."""
        machine = Machine(predecode=predecode,
                          limits=ResourceLimits(fuel=fuel))
        instance = machine.instantiate(spin_module, Linker())
        try:
            result = instance.invoke("spin", [arg])
            assert result == [arg * (arg - 1) // 2]
        except FuelExhausted:
            pass
        assert machine._depth == 0
        # the meter re-arms: a tiny follow-up run must behave identically
        # to the same run on a fresh machine with the same budget
        try:
            again = instance.invoke("spin", [5])
            assert again == [10]
        except FuelExhausted:
            assert fuel <= 20  # only minuscule budgets may fail spin(5)


class TestSessionPlumbing:
    def test_session_limits(self, spin_module):
        session = AnalysisSession(spin_module, Analysis(),
                                  limits=ResourceLimits(fuel=100))
        with pytest.raises(FuelExhausted):
            session.invoke("spin", [10**6])
        usage = session.resource_usage()
        assert isinstance(usage, ResourceUsage)
        assert usage.fuel_spent >= 100
        assert usage.hook_faults == 0

    def test_session_rejects_machine_and_limits(self, spin_module):
        with pytest.raises(ValueError, match="machine or limits"):
            AnalysisSession(spin_module, Analysis(), machine=Machine(),
                            limits=ResourceLimits(fuel=1))

    def test_unlimited_machine_has_no_meter(self):
        assert Machine()._meter is None
        assert Machine(limits=ResourceLimits(max_memory_pages=4))._meter is None
        assert Machine(limits=ResourceLimits(fuel=1))._meter is not None

    def test_usage_as_dict(self):
        usage = ResourceUsage(fuel_spent=5, peak_pages=2, peak_depth=3,
                              hook_faults=1)
        assert usage.as_dict() == {"fuel_spent": 5, "peak_pages": 2,
                                   "peak_depth": 3, "hook_faults": 1}

    def test_usage_reports_peak_pages(self, grow_module):
        machine = Machine()
        instance = machine.instantiate(grow_module, Linker())
        instance.invoke("grow", [2])
        assert machine.resource_usage().peak_pages == 3


class TestSegmentMetering:
    """Compiled straight-line segments (OP_SEGMENT, PR 7) must not change
    resource governance: the loop back-edge still charges fuel every
    iteration, and the deadline is still checked on the
    DEADLINE_CHECK_INTERVAL cadence even when the loop body collapses to a
    single segment dispatch."""

    @pytest.fixture
    def segment_module(self):
        # ~40 dependent arithmetic statements: one maximal straight-line
        # run, far above _SEGMENT_MIN, so quickening compiles the loop
        # body into an OP_SEGMENT slot
        body = "\n".join(f"                acc = acc * 3 + {k};"
                         for k in range(40))
        return compile_source(f"""
            export func crunch(n: i32) -> i32 {{
                var i: i32 = 0;
                var acc: i32 = 0;
                while (i < n) {{
{body}
                    i = i + 1;
                }}
                return acc;
            }}
        """, "segment")

    def test_quickened_stream_contains_a_segment(self, segment_module):
        from repro.interp.predecode import OP_SEGMENT, decode_function
        quickened = [decode_function(f, segment_module, quicken=True).code
                     for f in segment_module.functions]
        assert any(slot[0] == OP_SEGMENT
                   for code in quickened for slot in code)
        plain = [decode_function(f, segment_module, quicken=False).code
                 for f in segment_module.functions]
        assert all(slot[0] != OP_SEGMENT
                   for code in plain for slot in code)

    def test_fuel_parity_quickened_vs_unquickened(self, segment_module):
        spent = {}
        for quicken in (True, False):
            machine = Machine(predecode=True, quicken=quicken,
                              limits=ResourceLimits(observe=True))
            instance = machine.instantiate(segment_module, Linker())
            instance.invoke("crunch", [500])
            spent[quicken] = machine.resource_usage().fuel_spent
        assert spent[True] == spent[False]
        assert spent[True] >= 500  # the back-edge charges every iteration

    def test_fuel_exhaustion_inside_segment_loop(self, segment_module):
        machine = Machine(predecode=True, quicken=True,
                          limits=ResourceLimits(fuel=100))
        instance = machine.instantiate(segment_module, Linker())
        with pytest.raises(FuelExhausted):
            instance.invoke("crunch", [10**9])

    def test_deadline_cadence_with_segments(self, segment_module):
        from repro.interp.limits import DEADLINE_CHECK_INTERVAL

        reads = [0]

        def counting_clock():
            # every read advances "time" a full second, so the deadline is
            # in the past from the first post-arm check onward; the trip
            # point then measures the *check cadence*, not real time
            reads[0] += 1
            return float(reads[0])

        limits = ResourceLimits(fuel=50 * DEADLINE_CHECK_INTERVAL,
                                deadline_seconds=5.0)
        machine = Machine(predecode=True, quicken=True, limits=limits)
        machine._meter = Meter(limits, clock=counting_clock)
        instance = machine.instantiate(segment_module, Linker())
        # the fuel budget is a backstop: if segments suppressed the
        # deadline cadence, this raises FuelExhausted (a clean failure)
        # instead of spinning for 10**9 iterations
        with pytest.raises(DeadlineExceeded):
            instance.invoke("crunch", [10**9])
        charges = machine._meter.fuel_spent_total
        # the deadline armed ~5s ahead and the clock leaps 1s per read, so
        # the trip lands within a handful of 128-charge check windows
        assert charges <= 10 * DEADLINE_CHECK_INTERVAL
        # and the clock was actually read on the documented cadence
        assert reads[0] >= charges // DEADLINE_CHECK_INTERVAL
