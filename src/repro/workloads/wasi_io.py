"""I/O-bound workloads over the WASI subset, compiled via MiniC.

Three realistic host-boundary kernels (plus a startup smoke program),
each written the way robust native code is written — every syscall's
errno is checked, ``EINTR`` is retried with a bounded budget, short
reads/writes are resumed — so the fault-injection plane exercises real
error-handling paths rather than crashing the guest:

* ``line_filter`` — stream stdin, echo lines containing a needle byte to
  stdout, return the match count (grep's inner loop);
* ``checksum`` — FNV-1a over stdin in chunks, bracketed by monotonic
  clock reads, result written as ``CHK:xxxxxxxx\\n`` (hash pipelines);
* ``extract`` — open ``data.csv`` from the preopen, ``fd_seek`` to
  size it, sum the second comma-separated field per line, write the
  decimal total to stdout *and* a created ``out.txt`` (ETL inner loop);
* ``startup`` — args/environ marshalling, ``random_get``, and the
  ``proc_exit`` path.

Negative return values are ``-errno`` from a syscall the program could
not recover from — visible, well-formed failure, never a trap.
"""

from __future__ import annotations

from functools import lru_cache

from ..minic import compile_source
from ..wasm.module import Module

#: Memory layout (one 64 KiB page): scratch words at 0, the single iovec
#: at byte 8, transfer counts at 16, u64 outputs (clock/seek) at 24,
#: path strings at 64/96, stream buffer at 1024, output buffer at 8192,
#: slurp buffer at 16384 (cap 40000).

_RUNTIME = '''
memory 1;
import from "wasi_snapshot_preview1"
    func fd_read(fd: i32, iovs: i32, iovs_len: i32, nread: i32) -> i32;
import from "wasi_snapshot_preview1"
    func fd_write(fd: i32, iovs: i32, iovs_len: i32, nwritten: i32) -> i32;

// One fd_read through the scratch iovec, retrying EINTR a bounded
// number of times. Returns bytes read (0 at EOF) or -errno.
func read_chunk(fd: i32, buf: i32, cap: i32) -> i32 {
    var tries: i32 = 0;
    while (1) {
        mem_i32[2] = buf;
        mem_i32[3] = cap;
        var err: i32 = fd_read(fd, 8, 1, 16);
        if (err == 0) { return mem_i32[4]; }
        if (err == 27) {            // EINTR: retry, bounded
            tries = tries + 1;
            if (tries > 16) { return 0 - err; }
            continue;
        }
        return 0 - err;
    }
    return 0;
}

// Write all of [buf, buf+len), resuming short writes, retrying EINTR.
// Returns len or -errno.
func write_all(fd: i32, buf: i32, len: i32) -> i32 {
    var off: i32 = 0;
    var tries: i32 = 0;
    while (off < len) {
        mem_i32[2] = buf + off;
        mem_i32[3] = len - off;
        var err: i32 = fd_write(fd, 8, 1, 16);
        if (err == 27) {            // EINTR
            tries = tries + 1;
            if (tries > 16) { return 0 - err; }
            continue;
        }
        if (err != 0) { return 0 - err; }
        var n: i32 = mem_i32[4];
        if (n == 0) {
            tries = tries + 1;
            if (tries > 16) { return 0 - 29; }   // treat as EIO
        }
        off = off + n;
    }
    return len;
}

// Read fd to EOF into [dst, dst+cap). Returns total length or -errno.
func slurp(fd: i32, dst: i32, cap: i32) -> i32 {
    var total: i32 = 0;
    while (total < cap) {
        var n: i32 = read_chunk(fd, dst + total, cap - total);
        if (n < 0) { return n; }
        if (n == 0) { break; }
        total = total + n;
    }
    return total;
}
'''

_LINE_FILTER = _RUNTIME + '''
export func line_filter(needle: i32) -> i32 {
    var len: i32 = slurp(0, 16384, 40000);
    if (len < 0) { return len; }
    var count: i32 = 0;
    var pos: i32 = 0;
    var line_start: i32 = 0;
    var found: i32 = 0;
    while (pos <= len) {
        var ch: i32 = 10;
        if (pos < len) { ch = mem_u8[16384 + pos]; }
        if (ch == 10) {
            if (found) {
                count = count + 1;
                var end: i32 = pos + 1;
                if (end > len) { end = len; }
                var w: i32 = write_all(1, 16384 + line_start,
                                       end - line_start);
                if (w < 0) { return w; }
            }
            line_start = pos + 1;
            found = 0;
        } else {
            if (ch == needle) { found = 1; }
        }
        pos = pos + 1;
    }
    return count;
}
'''

_CHECKSUM = _RUNTIME + '''
import from "wasi_snapshot_preview1"
    func clock_time_get(clockid: i32, precision: i64, time: i32) -> i32;
import from "wasi_snapshot_preview1"
    func fd_fdstat_get(fd: i32, buf: i32) -> i32;

export func checksum() -> i32 {
    var stat_err: i32 = fd_fdstat_get(0, 32);
    if (stat_err != 0) { return 0 - stat_err; }
    var t_err: i32 = clock_time_get(1, 0L, 24);
    var hash: i32 = 0 - 2128831035;       // FNV-1a offset basis
    while (1) {
        var n: i32 = read_chunk(0, 1024, 4096);
        if (n < 0) { return n; }
        if (n == 0) { break; }
        var i: i32 = 0;
        while (i < n) {
            hash = (hash ^ mem_u8[1024 + i]) * 16777619;
            i = i + 1;
        }
    }
    t_err = clock_time_get(1, 0L, 24);
    // render "CHK:xxxxxxxx\\n"
    mem_u8[8192] = 67;  mem_u8[8193] = 72;
    mem_u8[8194] = 75;  mem_u8[8195] = 58;
    var k: i32 = 0;
    while (k < 8) {
        var nib: i32 = (hash >> ((7 - k) * 4)) & 15;
        var c: i32 = nib + 48;
        if (nib > 9) { c = nib + 87; }
        mem_u8[8196 + k] = c;
        k = k + 1;
    }
    mem_u8[8204] = 10;
    var w: i32 = write_all(1, 8192, 13);
    if (w < 0) { return w; }
    return hash;
}
'''

_EXTRACT = _RUNTIME + '''
import from "wasi_snapshot_preview1"
    func path_open(dirfd: i32, dirflags: i32, path: i32, path_len: i32,
                   oflags: i32, rights_base: i64, rights_inh: i64,
                   fdflags: i32, fd_out: i32) -> i32;
import from "wasi_snapshot_preview1" func fd_close(fd: i32) -> i32;
import from "wasi_snapshot_preview1"
    func fd_seek(fd: i32, offset: i64, whence: i32, newoffset: i32) -> i32;

// poke "data.csv" at 64 and "out.txt" at 96
func poke_paths() {
    mem_u8[64] = 100; mem_u8[65] = 97;  mem_u8[66] = 116; mem_u8[67] = 97;
    mem_u8[68] = 46;  mem_u8[69] = 99;  mem_u8[70] = 115; mem_u8[71] = 118;
    mem_u8[96] = 111; mem_u8[97] = 117; mem_u8[98] = 116; mem_u8[99] = 46;
    mem_u8[100] = 116; mem_u8[101] = 120; mem_u8[102] = 116;
}

export func extract() -> i32 {
    poke_paths();
    var err: i32 = path_open(3, 0, 64, 8, 0, 0L, 0L, 0, 60);
    if (err != 0) { return 0 - err; }
    var fd: i32 = mem_i32[15];
    err = fd_seek(fd, 0L, 2, 24);          // size = seek(0, END)
    if (err != 0) { return 0 - err; }
    var size: i32 = mem_i32[6];
    err = fd_seek(fd, 0L, 0, 24);          // rewind
    if (err != 0) { return 0 - err; }
    var len: i32 = slurp(fd, 16384, 40000);
    if (len < 0) { return len; }
    if (len != size) { return 0 - 29; }    // short file: surface as EIO
    err = fd_close(fd);
    if (err != 0) { return 0 - err; }

    // sum the second comma-separated field of every line
    var sum: i32 = 0;
    var field: i32 = 0;
    var cur: i32 = 0;
    var pos: i32 = 0;
    while (pos <= len) {
        var ch: i32 = 10;
        if (pos < len) { ch = mem_u8[16384 + pos]; }
        if (ch >= 48 && ch <= 57) {
            cur = cur * 10 + (ch - 48);
        } else if (ch == 44) {
            if (field == 1) { sum = sum + cur; }
            field = field + 1;
            cur = 0;
        } else if (ch == 10) {
            if (field == 1) { sum = sum + cur; }
            field = 0;
            cur = 0;
        }
        pos = pos + 1;
    }

    // render the decimal total + newline into the output buffer
    var v: i32 = sum;
    var ndigits: i32 = 0;
    if (v == 0) {
        mem_u8[8300] = 48;
        ndigits = 1;
    } else {
        while (v > 0) {
            mem_u8[8300 + ndigits] = 48 + v % 10;
            v = v / 10;
            ndigits = ndigits + 1;
        }
    }
    var j: i32 = 0;
    while (j < ndigits) {
        mem_u8[8192 + j] = mem_u8[8300 + ndigits - 1 - j];
        j = j + 1;
    }
    mem_u8[8192 + ndigits] = 10;
    var outlen: i32 = ndigits + 1;
    var w: i32 = write_all(1, 8192, outlen);
    if (w < 0) { return w; }

    // persist to a created out.txt as well (exercises CREAT + governance)
    err = path_open(3, 0, 96, 7, 1, 0L, 0L, 0, 60);
    if (err != 0) { return 0 - err; }
    var ofd: i32 = mem_i32[15];
    w = write_all(ofd, 8192, outlen);
    if (w < 0) { return w; }
    err = fd_close(ofd);
    if (err != 0) { return 0 - err; }
    return sum;
}
'''

_STARTUP = '''
memory 1;
import from "wasi_snapshot_preview1"
    func args_sizes_get(argc: i32, buf_size: i32) -> i32;
import from "wasi_snapshot_preview1"
    func args_get(argv: i32, buf: i32) -> i32;
import from "wasi_snapshot_preview1"
    func environ_sizes_get(count: i32, buf_size: i32) -> i32;
import from "wasi_snapshot_preview1"
    func environ_get(env: i32, buf: i32) -> i32;
import from "wasi_snapshot_preview1"
    func random_get(buf: i32, buf_len: i32) -> i32;
import from "wasi_snapshot_preview1" func proc_exit(code: i32);

export func startup(limit: i32) -> i32 {
    var err: i32 = args_sizes_get(0, 4);
    if (err != 0) { return 0 - err; }
    var argc: i32 = mem_i32[0];
    err = args_get(64, 256);
    if (err != 0) { return 0 - err; }
    err = environ_sizes_get(0, 4);
    if (err != 0) { return 0 - err; }
    err = environ_get(1024, 2048);
    if (err != 0) { return 0 - err; }
    err = random_get(4096, 16);
    if (err != 0) { return 0 - err; }
    var mix: i32 = 0;
    var i: i32 = 0;
    while (i < 16) {
        mix = mix * 31 + mem_u8[4096 + i];
        i = i + 1;
    }
    if (argc > limit) { proc_exit(7); }
    return argc * 65536 + (mix & 65535);
}
'''

#: name -> (MiniC source, exported entry, default invoke args)
WASI_IO_PROGRAMS: dict[str, tuple[str, str, tuple]] = {
    "line_filter": (_LINE_FILTER, "line_filter", (ord("@"),)),
    "checksum": (_CHECKSUM, "checksum", ()),
    "extract": (_EXTRACT, "extract", ()),
    "startup": (_STARTUP, "startup", (8,)),
}

#: Deterministic default inputs matched to the programs above.
SAMPLE_STDIN = (b"alpha @one\nbeta two\ngamma @three\n"
                b"delta four\nepsilon @five\n")
SAMPLE_CSV = (b"a,10,x\nb,20,y\nc,30,z\nd,40,w\ne,5,q\n")
SAMPLE_FILES = {"data.csv": SAMPLE_CSV}


def wasi_io_names() -> list[str]:
    return sorted(WASI_IO_PROGRAMS)


@lru_cache(maxsize=None)
def wasi_io_module(name: str) -> Module:
    """Compile one wasi_io program (cached — sources are constants)."""
    source, _entry, _args = WASI_IO_PROGRAMS[name]
    return compile_source(source, name=f"wasi_io_{name}")


def wasi_io_entry(name: str) -> tuple[str, tuple]:
    """The exported entry point and its default invoke arguments."""
    _source, entry, args = WASI_IO_PROGRAMS[name]
    return entry, args


# -- Python reference models (the tests' oracle) -------------------------------


def ref_line_filter(stdin: bytes, needle: int) -> tuple[int, bytes]:
    """Expected (return value, stdout) of ``line_filter``."""
    out = bytearray()
    count = 0
    segments = stdin.split(b"\n")
    for i, line in enumerate(segments):
        last = i == len(segments) - 1
        if last and not line:
            break  # input ended with a newline: no trailing line
        if needle in line:
            count += 1
            out += line if last else line + b"\n"
    return count, bytes(out)


def ref_checksum(stdin: bytes) -> tuple[int, bytes]:
    """Expected (return value, stdout) of ``checksum``."""
    value = 2166136261
    for byte in stdin:
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value, b"CHK:%08x\n" % value


def ref_extract(csv: bytes) -> tuple[int, bytes]:
    """Expected (return value, stdout) of ``extract``."""
    total = 0
    for line in csv.split(b"\n"):
        fields = line.split(b",")
        if len(fields) >= 2 and fields[1].isdigit():
            total += int(fields[1])
    return total, b"%d\n" % total
