"""The validator: accepts valid modules, rejects ill-typed ones."""

import pytest

from repro.wasm import Instr, ValidationError, validate_module
from repro.wasm.builder import ModuleBuilder
from repro.wasm.module import BrTable
from repro.wasm.types import F64, I32, GlobalType


def build_single(body_fn, params=(), results=(), **module_kwargs):
    builder = ModuleBuilder()
    if module_kwargs.get("memory"):
        builder.add_memory(1)
    fb = builder.function(params, results)
    body_fn(fb)
    fb.finish()
    return builder.build()


def assert_invalid(body_fn, match, params=(), results=(), **kw):
    module = build_single(body_fn, params, results, **kw)
    with pytest.raises(ValidationError, match=match):
        validate_module(module)


class TestOperandStack:
    def test_underflow(self):
        assert_invalid(lambda fb: fb.emit("i32.add"), "underflow",
                       results=(I32,))

    def test_type_mismatch(self):
        assert_invalid(
            lambda fb: fb.i32_const(1).f64_const(2.0).emit("i32.add"),
            "type mismatch", results=(I32,))

    def test_leftover_values(self):
        assert_invalid(lambda fb: fb.i32_const(1).i32_const(2), "superfluous",
                       results=(I32,))

    def test_missing_result(self):
        assert_invalid(lambda fb: fb.emit("nop"), "underflow", results=(I32,))

    def test_valid_arith(self):
        validate_module(build_single(
            lambda fb: fb.i32_const(1).i32_const(2).emit("i32.add"),
            results=(I32,)))


class TestControlFlow:
    def test_branch_label_out_of_range(self):
        assert_invalid(lambda fb: fb.br(1), "label")

    def test_branch_carries_block_result(self):
        def body(fb):
            fb.block(I32)
            fb.i32_const(5)
            fb.br(0)
            fb.end()
        validate_module(build_single(body, results=(I32,)))

    def test_branch_missing_block_result(self):
        def body(fb):
            fb.block(I32)
            fb.br(0)          # must provide an i32
            fb.end()
        assert_invalid(body, "underflow", results=(I32,))

    def test_loop_label_takes_no_values(self):
        def body(fb):
            fb.loop(I32)
            fb.i32_const(5)
            fb.br(0)          # to loop start: no values expected
            fb.end()
        # 5 is left on the stack when branching; since br clears to the
        # loop's start arity (0), the value is simply discarded -> valid
        validate_module(build_single(body, results=(I32,)))

    def test_if_without_else_needs_empty_type(self):
        def body(fb):
            fb.i32_const(1)
            fb.if_(I32)
            fb.i32_const(2)
            fb.end()
        assert_invalid(body, "else", results=(I32,))

    def test_if_else_ok(self):
        def body(fb):
            fb.i32_const(1)
            fb.if_(I32)
            fb.i32_const(2)
            fb.else_()
            fb.i32_const(3)
            fb.end()
        validate_module(build_single(body, results=(I32,)))

    def test_else_branch_types_checked(self):
        def body(fb):
            fb.i32_const(1)
            fb.if_(I32)
            fb.i32_const(2)
            fb.else_()
            fb.f64_const(3.0)
            fb.end()
        assert_invalid(body, "type mismatch", results=(I32,))

    def test_else_without_if(self):
        assert_invalid(lambda fb: fb.emit("else"), "else")

    def test_br_table_inconsistent_targets(self):
        def body(fb):
            fb.block(I32)
            fb.block()
            fb.i32_const(0)
            fb.emit("br_table", br_table=BrTable((0, 1), 0))
            fb.end()
            fb.i32_const(1)
            fb.end()
        assert_invalid(body, "inconsistent", results=(I32,))

    def test_unreachable_code_is_polymorphic(self):
        def body(fb):
            fb.emit("unreachable")
            fb.emit("i32.add")      # types as anything in dead code
            fb.emit("drop")
        validate_module(build_single(body, results=()))

    def test_code_after_return_checked_loosely(self):
        def body(fb):
            fb.i32_const(1)
            fb.emit("return")
            fb.emit("f64.mul")
            fb.emit("drop")
        validate_module(build_single(body, results=(I32,)))


class TestVariables:
    def test_local_out_of_range(self):
        assert_invalid(lambda fb: fb.get_local(3), "local index")

    def test_local_type_checked(self):
        def body(fb):
            local = fb.add_local(F64)
            fb.i32_const(1)
            fb.set_local(local)
        assert_invalid(body, "type mismatch")

    def test_set_immutable_global_rejected(self):
        builder = ModuleBuilder()
        glob = builder.add_global(I32, mutable=False, init=1)
        fb = builder.function((), ())
        fb.i32_const(2).set_global(glob)
        fb.finish()
        with pytest.raises(ValidationError, match="immutable"):
            validate_module(builder.build())

    def test_global_out_of_range(self):
        assert_invalid(lambda fb: fb.get_global(0).emit("drop"), "global index")


class TestCallsAndMemory:
    def test_call_out_of_range(self):
        assert_invalid(lambda fb: fb.call(5), "out-of-range")

    def test_call_argument_types(self, fib_module):
        validate_module(fib_module)

    def test_call_indirect_requires_table(self):
        def body(fb):
            fb.i32_const(0)
            fb.emit("call_indirect", idx=0)
        assert_invalid(body, "table")

    def test_memory_instruction_requires_memory(self):
        assert_invalid(lambda fb: fb.i32_const(0).load("i32.load").emit("drop"),
                       "memory")

    def test_natural_alignment_enforced(self):
        def body(fb):
            fb.i32_const(0)
            fb.load("i32.load8_u", align=1)  # 2**1 > natural 2**0
            fb.emit("drop")
        assert_invalid(body, "alignment", memory=True)

    def test_select_operand_types_must_match(self):
        def body(fb):
            fb.i32_const(1)
            fb.f64_const(2.0)
            fb.i32_const(0)
            fb.emit("select")
            fb.emit("drop")
        assert_invalid(body, "select")


class TestModuleLevel:
    def test_duplicate_export_names(self):
        builder = ModuleBuilder()
        fb = builder.function((), (), export="x")
        fb.finish()
        builder.export_function("x", fb.func_idx)
        with pytest.raises(ValidationError, match="duplicate export"):
            validate_module(builder.build())

    def test_start_function_signature(self):
        builder = ModuleBuilder()
        fb = builder.function((I32,), ())
        fb.finish()
        builder.set_start(fb.func_idx)
        with pytest.raises(ValidationError, match="start"):
            validate_module(builder.build())

    def test_element_segment_function_bounds(self):
        builder = ModuleBuilder()
        builder.add_table(2)
        builder.add_element(0, [7])
        with pytest.raises(ValidationError, match="element"):
            validate_module(builder.build())

    def test_global_initializer_type(self):
        builder = ModuleBuilder()
        builder.module.globals.append(
            __import__("repro.wasm.module", fromlist=["Global"]).Global(
                GlobalType(I32), [Instr("f64.const", value=1.0)]))
        with pytest.raises(ValidationError, match="initializer"):
            validate_module(builder.build())

    def test_two_memories_rejected(self):
        builder = ModuleBuilder()
        builder.add_memory(1)
        builder.add_memory(1)
        with pytest.raises(ValidationError, match="memory"):
            validate_module(builder.build())
