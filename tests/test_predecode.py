"""The pre-decoded threaded engine: cache behaviour, differential
equivalence with the legacy loop, and host-result coercion.

Engine selection is always explicit here (``Machine(predecode=...)``) so
these tests mean the same thing under the CI differential job, which sets
``REPRO_PREDECODE=0`` for the rest of the suite.
"""

from __future__ import annotations

import struct

import pytest

from repro.interp import Machine, cached_decode, decode_function, predecode_default
from repro.interp.host import HostFunction, Linker
from repro.interp.predecode import (OP_CONST_BINARY, OP_GET2_LOCAL,
                                    OP_GET_LOCAL_CONST, OP_RAISE)
from repro.minic import compile_source
from repro.wasm.builder import ModuleBuilder
from repro.wasm.errors import ExhaustionError, Trap, WasmError
from repro.wasm.module import BrTable, Instr
from repro.wasm.types import F32, F64, I32, I64, FuncType


def _bits(values: list[int | float]) -> list[bytes]:
    """Bit patterns of a result list (distinguishes 0.0/-0.0, NaN payloads)."""
    return [struct.pack("<d", v) if isinstance(v, float)
            else v.to_bytes(8, "little") for v in values]


# -- decoded-stream cache ---------------------------------------------------------


class TestDecodeCache:
    def test_second_instantiation_hits_cache(self, fib_module):
        machine = Machine(predecode=True)
        machine.instantiate(fib_module)
        assert machine.predecode_cache_misses == 1
        assert machine.predecode_cache_hits == 0
        machine.instantiate(fib_module)
        assert machine.predecode_cache_misses == 1
        assert machine.predecode_cache_hits == 1

    def test_cache_shared_across_machines(self, memory_module):
        Machine(predecode=True).instantiate(memory_module)
        second = Machine(predecode=True)
        second.instantiate(memory_module)
        assert second.predecode_cache_hits >= 1
        assert second.predecode_cache_misses == 0

    def test_cached_results_identical(self, fib_module):
        machine = Machine(predecode=True)
        first = machine.instantiate(fib_module)
        second = machine.instantiate(fib_module)
        assert machine.predecode_cache_hits >= 1
        assert first.invoke("fib", [12]) == second.invoke("fib", [12]) == [144]

    def test_body_replacement_invalidates(self, add_module):
        machine = Machine(predecode=True)
        instance = machine.instantiate(add_module)
        assert instance.invoke("add", [2, 3]) == [5]
        func = add_module.functions[0]
        func.body = [Instr("get_local", idx=0), Instr("get_local", idx=1),
                     Instr("i32.sub"), Instr("end")]
        fresh = machine.instantiate(add_module)
        assert machine.predecode_cache_misses == 2  # re-decoded, not reused
        assert fresh.invoke("add", [7, 3]) == [4]

    def test_cached_decode_returns_hit_flag(self, add_module):
        func = add_module.functions[0]
        func.body = list(func.body)  # drop any cache from other tests
        _, hit = cached_decode(func, add_module)
        assert not hit
        _, hit = cached_decode(func, add_module)
        assert hit

    def test_legacy_machine_does_not_decode(self, add_module):
        machine = Machine(predecode=False)
        machine.instantiate(add_module)
        assert machine.predecode_cache_hits == 0
        assert machine.predecode_cache_misses == 0


class TestEngineSelection:
    def test_default_follows_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PREDECODE", raising=False)
        assert predecode_default() is True
        for off in ("0", "false", "no", "off", "False", "OFF"):
            monkeypatch.setenv("REPRO_PREDECODE", off)
            assert predecode_default() is False
        monkeypatch.setenv("REPRO_PREDECODE", "1")
        assert predecode_default() is True

    def test_explicit_flag_overrides_env(self, monkeypatch, add_module):
        monkeypatch.setenv("REPRO_PREDECODE", "0")
        machine = Machine(predecode=True)
        assert machine.predecode
        machine.instantiate(add_module)
        assert machine.predecode_cache_misses + machine.predecode_cache_hits == 1


# -- differential: both engines, same observable behaviour ------------------------


def _both_engines(module, name, args, linker_fn=lambda: None):
    results = []
    for predecode in (False, True):
        machine = Machine(predecode=predecode)
        instance = machine.instantiate(module, linker_fn())
        results.append(instance.invoke(name, args))
    return results


class TestEngineDifferential:
    def test_fib(self, fib_module):
        legacy, fast = _both_engines(fib_module, "fib", [15])
        assert _bits(legacy) == _bits(fast) == _bits([610])

    def test_memory_roundtrip(self, memory_module):
        legacy, fast = _both_engines(memory_module, "roundtrip", [2.5])
        assert _bits(legacy) == _bits(fast)
        legacy, fast = _both_engines(memory_module, "grow", [])
        assert _bits(legacy) == _bits(fast)

    def test_br_table_and_nested_blocks(self):
        builder = ModuleBuilder("brt")
        fb = builder.function((I32,), (I32,), name="classify", export="classify")
        fb.block().block().block()
        fb.get_local(0)
        fb.emit("br_table", br_table=BrTable((0, 1), 2))
        fb.end()                     # depth 0: x == 0
        fb.i32_const(100)
        fb.emit("return")
        fb.end()                     # depth 1: x == 1
        fb.i32_const(200)
        fb.emit("return")
        fb.end()                     # default
        fb.i32_const(999)
        fb.finish()
        module = builder.build()
        for x in range(0, 5):
            legacy, fast = _both_engines(module, "classify", [x])
            assert legacy == fast
            assert legacy == [{0: 100, 1: 200}.get(x, 999)]

    def test_floats_bit_identical(self):
        module = compile_source("""
            export func mix(a: f64, b: f64) -> f64 {
                var c: f32 = f32(a) * f32(b);
                return f64(c) + a / b;
            }
        """)
        for a, b in [(1.5, -3.25), (0.0, -0.0), (1e308, 1e-308), (-7.0, 0.0)]:
            legacy, fast = _both_engines(module, "mix", [a, b])
            assert _bits(legacy) == _bits(fast)

    def test_traps_identical(self):
        module = compile_source("""
            memory 1;
            export func div(a: i32, b: i32) -> i32 { return a / b; }
            export func oob(a: i32) -> i32 { return mem_i32[a]; }
        """)
        for name, args in [("div", [1, 0]), ("oob", [1 << 20])]:
            messages = []
            for predecode in (False, True):
                machine = Machine(predecode=predecode)
                instance = machine.instantiate(module)
                with pytest.raises(Trap) as excinfo:
                    instance.invoke(name, args)
                messages.append(str(excinfo.value))
            assert messages[0] == messages[1]

    def test_unreachable_and_exhaustion(self):
        builder = ModuleBuilder("traps")
        fb = builder.function((), (), name="boom", export="boom")
        fb.emit("unreachable")
        fb.finish()
        module = builder.build()
        for predecode in (False, True):
            instance = Machine(predecode=predecode).instantiate(module)
            with pytest.raises(Trap, match="unreachable"):
                instance.invoke("boom", [])

        deep = compile_source("""
            export func down(n: i32) -> i32 { return down(n + 1); }
        """)
        for predecode in (False, True):
            instance = Machine(predecode=predecode).instantiate(deep)
            with pytest.raises(ExhaustionError):
                instance.invoke("down", [0])

    def test_indirect_calls(self):
        module = compile_source("""
            type unop = func(i32) -> i32;
            func double(x: i32) -> i32 { return x * 2; }
            func square(x: i32) -> i32 { return x * x; }
            table [double, square];
            export func apply(f: i32, x: i32) -> i32 {
                return call_indirect[unop](f, x);
            }
        """)
        for f, x in [(0, 21), (1, 7)]:
            legacy, fast = _both_engines(module, "apply", [f, x])
            assert legacy == fast


# -- decode details ---------------------------------------------------------------


class TestDecodeDetails:
    def test_malformed_instruction_fails_at_run_time(self):
        builder = ModuleBuilder("bad")
        fb = builder.function((), (I32,), name="bad", export="bad")
        fb.emit("i32.const", value=1)
        fb.finish()
        module = builder.build()
        module.functions[0].body.insert(1, Instr("i32.bogus_op"))
        # instantiation succeeds on both engines...
        for predecode in (False, True):
            instance = Machine(predecode=predecode).instantiate(module)
            # ...the error surfaces only when the bad instruction executes
            with pytest.raises(WasmError):
                instance.invoke("bad", [])

    def test_raise_placeholder_in_stream(self):
        builder = ModuleBuilder("bad")
        fb = builder.function((), (), name="f")
        fb.emit("nop")
        fb.finish()
        module = builder.build()
        module.functions[0].body.insert(0, Instr("i32.bogus_op"))
        decoded = decode_function(module.functions[0], module)
        assert decoded.code[0][0] == OP_RAISE
        assert len(decoded.code) == len(module.functions[0].body)

    def test_superinstruction_fusion(self):
        module = compile_source("""
            export func addressish(i: i32, j: i32) -> i32 {
                return (i * 8 + j) * 4;
            }
        """)
        func = module.functions[0]
        decoded = decode_function(func, module)
        fused = {ins[0] for ins in decoded.code}
        assert fused & {OP_GET_LOCAL_CONST, OP_CONST_BINARY, OP_GET2_LOCAL}
        legacy, fast = _both_engines(module, "addressish", [3, 5])
        assert legacy == fast == [116]


# -- host-function result coercion (regression: silent float→i32 truncation) -----


class TestHostResultCoercion:
    def _module_calling_host(self, result_type):
        builder = ModuleBuilder("host")
        functype = FuncType((), (result_type,))
        builder.import_function("env", "source", functype)
        fb = builder.function((), (result_type,), name="go", export="go")
        fb.emit("call", idx=0)
        fb.finish()
        return builder.build(), functype

    def _run(self, result_type, host_value, predecode):
        module, functype = self._module_calling_host(result_type)
        linker = Linker()
        linker.define_function("env", "source", functype,
                               lambda args: host_value)
        machine = Machine(predecode=predecode)
        instance = machine.instantiate(module, linker)
        return instance.invoke("go", [])

    @pytest.mark.parametrize("predecode", [False, True])
    def test_float_for_i32_result_raises(self, predecode):
        with pytest.raises(WasmError, match="non-integer"):
            self._run(I32, 2.5, predecode)

    @pytest.mark.parametrize("predecode", [False, True])
    def test_float_for_i64_result_raises(self, predecode):
        with pytest.raises(WasmError, match="non-integer"):
            self._run(I64, 1.0, predecode)

    @pytest.mark.parametrize("predecode", [False, True])
    def test_non_numeric_result_raises(self, predecode):
        with pytest.raises(WasmError, match="non-numeric"):
            self._run(F64, "nope", predecode)

    @pytest.mark.parametrize("predecode", [False, True])
    def test_wrong_arity_raises(self, predecode):
        with pytest.raises(WasmError, match="returned 2 values"):
            self._run(I32, (1, 2), predecode)

    @pytest.mark.parametrize("predecode", [False, True])
    def test_valid_results_still_coerced(self, predecode):
        assert self._run(I32, -1, predecode) == [0xFFFFFFFF]
        assert self._run(F32, 1.1, predecode) == \
            [struct.unpack("<f", struct.pack("<f", 1.1))[0]]
        assert self._run(I64, True, predecode) == [1]

    def test_host_function_direct_call(self):
        # the HostFunction import path used by Machine.call directly
        functype = FuncType((), (I32,))
        host = HostFunction(functype, lambda args: 0.5, name="bad_host")
        builder = ModuleBuilder("direct")
        builder.import_function("env", "f", functype)
        fb = builder.function((), (I32,), name="go", export="go")
        fb.emit("call", idx=0)
        fb.finish()
        linker = Linker()
        linker.define("env", "f", host)
        instance = Machine(predecode=True).instantiate(builder.build(), linker)
        with pytest.raises(WasmError, match="bad_host"):
            instance.invoke("go", [])


class TestStreamSummary:
    """The decoded-stream triage summary used by `repro bundle`."""

    def test_plain_module(self):
        from repro.interp.predecode import stream_summary
        module = compile_source("""
            import func print_f64(x: f64);
            export func main() -> f64 {
                print_f64(2.5);
                return 2.5;
            }
        """, "plain")
        summary = stream_summary(module)
        assert summary["instructions"] == sum(len(f.body)
                                              for f in module.functions)
        assert summary["host_call_sites"] == 1
        assert summary["hook_sites"] == 0
        assert summary["raising"] == 0

    def test_instrumented_module_has_hook_sites(self):
        from repro.core import instrument_module
        from repro.interp.predecode import stream_summary
        module = compile_source("""
            export func f(n: i32) -> i32 { return n + 1; }
        """, "inst")
        assert stream_summary(module)["hook_sites"] == 0
        instrumented = instrument_module(module).module
        assert stream_summary(instrumented)["hook_sites"] > 0

    def test_malformed_body_counts_raising(self):
        from repro.interp.predecode import stream_summary
        module = compile_source("""
            export func f() -> i32 { return 3; }
        """, "broken")
        module.functions[0].body.insert(0, Instr("i32.const"))  # no immediate
        assert stream_summary(module)["raising"] == 1
