"""The host-boundary (cross-language) analysis (paper §6 future work)."""

from repro import analyze
from repro.analyses.boundary import HostBoundaryAnalysis
from repro.interp import Linker
from repro.minic import compile_source
from repro.wasm.types import I32, FuncType


def make_app():
    module = compile_source("""
        import func host_read() -> i32;
        import func host_write(x: i32);
        memory 1;
        func local_helper(x: i32) -> i32 { return x * 2; }
        export func main(n: i32) -> i32 {
            var acc: i32 = 0;
            var i: i32;
            for (i = 0; i < n; i = i + 1) {
                mem_i32[i] = host_read();
                acc = acc + local_helper(mem_i32[i]);
            }
            host_write(acc);
            return acc;
        }
    """)
    linker = Linker()
    linker.define_function("env", "host_read", FuncType((), (I32,)),
                           lambda args: 5)
    sent = []
    linker.define_function("env", "host_write", FuncType((I32,), ()),
                           lambda args: sent.append(args[0]))
    return module, linker, sent


class TestBoundary:
    def test_crossings_counted(self):
        module, linker, sent = make_app()
        analysis = HostBoundaryAnalysis()
        session = analyze(module, analysis, linker=linker)
        analysis.bind_module_info(session.module_info)
        session.invoke("main", [3])
        assert analysis.total_crossings() == 4  # 3 reads + 1 write
        assert analysis.calls_per_import["env.host_read"] == 3
        assert analysis.calls_per_import["env.host_write"] == 1
        assert sent == [30]

    def test_internal_calls_not_counted(self):
        module, linker, _ = make_app()
        analysis = HostBoundaryAnalysis()
        session = analyze(module, analysis, linker=linker)
        analysis.bind_module_info(session.module_info)
        session.invoke("main", [2])
        names = {c.callee_name for c in analysis.crossings}
        assert "local_helper" not in names

    def test_values_and_results_recorded(self):
        module, linker, _ = make_app()
        analysis = HostBoundaryAnalysis()
        session = analyze(module, analysis, linker=linker)
        analysis.bind_module_info(session.module_info)
        session.invoke("main", [1])
        read = next(c for c in analysis.crossings
                    if c.callee_name == "env.host_read")
        assert read.args == () and read.results == (5,)
        write = next(c for c in analysis.crossings
                     if c.callee_name == "env.host_write")
        assert write.args == (10,) and write.results == ()

    def test_memory_prepared_between_crossings(self):
        module, linker, _ = make_app()
        analysis = HostBoundaryAnalysis()
        session = analyze(module, analysis, linker=linker)
        analysis.bind_module_info(session.module_info)
        session.invoke("main", [2])
        # before the final host_write, two i32 stores (8 bytes) happened
        assert analysis.bytes_written_between_crossings[-1] == 4

    def test_report(self):
        module, linker, _ = make_app()
        analysis = HostBoundaryAnalysis()
        session = analyze(module, analysis, linker=linker)
        analysis.bind_module_info(session.module_info)
        session.invoke("main", [1])
        text = analysis.report()
        assert "host-boundary crossings: 2" in text
        assert "env.host_read: 1 calls" in text
