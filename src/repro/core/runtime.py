"""The Wasabi runtime: generated low-level hooks dispatching to the analysis.

For every :class:`HookSpec` the instrumenter generated, the runtime creates
a host function (the analogue of the paper's generated JavaScript low-level
hooks). These functions

* re-join split i64 halves into full-width integers (§2.4.6),
* convert raw i32 condition values to booleans (Figure 5),
* attach pre-computed static information — resolved branch targets, memory
  offsets, variable indices, call targets (§2.3 "pre-computed information"),
* resolve indirect-call table indices to the actually called function by
  reading the live table (§2.3), and
* for ``br_table``, select the taken entry and fire the end hooks of all
  traversed blocks at runtime (§2.4.5),

before invoking the user's high-level hooks.
"""

from __future__ import annotations

from typing import Callable

from ..interp.host import HostFunction
from ..interp.machine import Instance
from ..wasm.numeric import to_signed
from ..wasm.types import I64, ValType
from .analysis import Analysis, Location, MemArg
from .hooks import HookSpec, split_i64
from .instrument import InstrumentationResult
from .metadata import StaticInfo


def _present(valtype: ValType, raw: int | float) -> int | float:
    """Convert a canonical runtime value to its analysis-facing form.

    Integers become signed Python ints (the JavaScript ``number`` /
    long.js view of the paper's Figure 5); floats pass through.
    """
    if valtype is ValType.I32:
        return to_signed(raw, 32)
    if valtype is ValType.I64:
        return to_signed(raw, 64)
    return raw


class WasabiRuntime:
    """Builds and owns the low-level hook host functions for one analysis."""

    def __init__(self, result: InstrumentationResult, analysis: Analysis):
        self.info: StaticInfo = result.info
        self.analysis = analysis
        self.instance: Instance | None = None
        self._num_original_imports = sum(
            1 for f in self.info.module_info.functions if f.imported)
        self._num_hooks = len(self.info.hooks)
        self._with_locations = True
        if self.info.hooks:
            # all hooks share the location convention
            first = self.info.hooks[0]
            self._with_locations = (len(first.wasm_params)
                                    == len(split_i64(first.value_types)) + 2)
        self.enabled = True  # allows pausing an analysis mid-run

    def bind(self, instance: Instance) -> None:
        """Attach the instrumented instance (needed for table lookups)."""
        self.instance = instance

    # -- host function generation ----------------------------------------------

    def host_functions(self) -> dict[str, HostFunction]:
        """One generated host function per low-level hook."""
        return {spec.name: HostFunction(spec.functype,
                                        self._make_dispatcher(spec),
                                        name=spec.name)
                for spec in self.info.hooks}

    def _split_args(self, spec: HookSpec,
                    raw: list[int | float]) -> tuple[Location, list[int | float]]:
        if self._with_locations:
            func_idx = raw[-2]
            instr_idx = to_signed(raw[-1], 32)
            raw = raw[:-2]
        else:
            func_idx, instr_idx = -1, -1
        location = Location(func_idx, instr_idx)
        values: list[int | float] = []
        cursor = 0
        for valtype in spec.value_types:
            if valtype is I64:
                low, high = raw[cursor], raw[cursor + 1]
                values.append(low | (high << 32))
                cursor += 2
            else:
                values.append(raw[cursor])
                cursor += 1
        return location, values

    def _original_func_idx(self, instrumented_idx: int) -> int:
        """Map a function index of the instrumented module back to the
        original index space (inverse of the instrumenter's remapping)."""
        if instrumented_idx < self._num_original_imports:
            return instrumented_idx
        return instrumented_idx - self._num_hooks

    def _make_dispatcher(self, spec: HookSpec) -> Callable[[list], None]:
        analysis = self.analysis
        kind = spec.kind
        payload = spec.payload
        info = self.info

        # Fast path: without i64 values there is no split-halves re-joining,
        # so the raw args *are* the values and the generic cursor walk in
        # _split_args can be skipped. Hooks fire once per executed
        # instruction, so this is the hottest code outside the interpreter.
        if any(t is I64 for t in spec.value_types):
            def loc_and_vals(args: list) -> tuple[Location, list]:
                return self._split_args(spec, args)
        elif self._with_locations:
            def loc_and_vals(args: list) -> tuple[Location, list]:
                return Location(args[-2], to_signed(args[-1], 32)), args[:-2]
        else:
            no_loc = Location(-1, -1)
            def loc_and_vals(args: list) -> tuple[Location, list]:
                return no_loc, args[:]

        if kind == "const":
            valtype = payload[0]
            def dispatch(args: list) -> None:
                loc, (value,) = loc_and_vals(args)
                analysis.const_(loc, _present(valtype, value))
        elif kind == "drop":
            valtype = payload[0]
            def dispatch(args: list) -> None:
                loc, (value,) = loc_and_vals(args)
                analysis.drop(loc, _present(valtype, value))
        elif kind == "select":
            valtype = payload[0]
            def dispatch(args: list) -> None:
                loc, (first, second, condition) = loc_and_vals(args)
                analysis.select(loc, bool(condition),
                                _present(valtype, first),
                                _present(valtype, second))
        elif kind in ("unary", "binary"):
            op = payload[0]
            from ..wasm.opcodes import BY_NAME
            params, results = BY_NAME[op].signature
            if kind == "unary":
                def dispatch(args: list) -> None:
                    loc, (inp, res) = loc_and_vals(args)
                    analysis.unary(loc, op, _present(params[0], inp),
                                   _present(results[0], res))
            else:
                def dispatch(args: list) -> None:
                    loc, (first, second, res) = loc_and_vals(args)
                    analysis.binary(loc, op, _present(params[0], first),
                                    _present(params[1], second),
                                    _present(results[0], res))
        elif kind == "load":
            op = payload[0]
            from ..wasm.opcodes import BY_NAME
            valtype = BY_NAME[op].signature[1][0]
            def dispatch(args: list) -> None:
                loc, (addr, value) = loc_and_vals(args)
                offset = info.memarg_offsets.get((loc.func, loc.instr), 0)
                analysis.load(loc, op, MemArg(addr, offset),
                              _present(valtype, value))
        elif kind == "store":
            op = payload[0]
            from ..wasm.opcodes import BY_NAME
            valtype = BY_NAME[op].signature[0][1]
            def dispatch(args: list) -> None:
                loc, (addr, value) = loc_and_vals(args)
                offset = info.memarg_offsets.get((loc.func, loc.instr), 0)
                analysis.store(loc, op, MemArg(addr, offset),
                               _present(valtype, value))
        elif kind == "local":
            op, valtype = payload
            def dispatch(args: list) -> None:
                loc, (value,) = loc_and_vals(args)
                index = info.var_indices[(loc.func, loc.instr)]
                analysis.local(loc, op, index, _present(valtype, value))
        elif kind == "global":
            op, valtype = payload
            def dispatch(args: list) -> None:
                loc, (value,) = loc_and_vals(args)
                index = info.var_indices[(loc.func, loc.instr)]
                analysis.global_(loc, op, index, _present(valtype, value))
        elif kind == "memory_size":
            def dispatch(args: list) -> None:
                loc, (size,) = loc_and_vals(args)
                analysis.memory_size(loc, size)
        elif kind == "memory_grow":
            def dispatch(args: list) -> None:
                loc, (delta, previous) = loc_and_vals(args)
                analysis.memory_grow(loc, delta, previous)
        elif kind == "call_pre":
            indirect = payload[0] == "indirect"
            param_types = payload[1:]
            if indirect:
                def dispatch(args: list) -> None:
                    loc, values = loc_and_vals(args)
                    table_index = values[0]
                    call_args = [_present(t, v)
                                 for t, v in zip(param_types, values[1:])]
                    target = -1
                    if self.instance is not None and self.instance.table is not None:
                        entry = self.instance.table.lookup(table_index)
                        if entry is not None:
                            target = self._original_func_idx(entry)
                    analysis.call_pre(loc, target, call_args, table_index)
            else:
                def dispatch(args: list) -> None:
                    loc, values = loc_and_vals(args)
                    call_args = [_present(t, v)
                                 for t, v in zip(param_types, values)]
                    target = info.call_targets[(loc.func, loc.instr)]
                    analysis.call_pre(loc, target, call_args, None)
        elif kind == "call_post":
            result_types = payload
            def dispatch(args: list) -> None:
                loc, values = loc_and_vals(args)
                analysis.call_post(
                    loc, [_present(t, v) for t, v in zip(result_types, values)])
        elif kind == "return":
            result_types = payload
            def dispatch(args: list) -> None:
                loc, values = loc_and_vals(args)
                analysis.return_(
                    loc, [_present(t, v) for t, v in zip(result_types, values)])
        elif kind == "br":
            def dispatch(args: list) -> None:
                loc, _ = loc_and_vals(args)
                analysis.br(loc, info.br_targets[(loc.func, loc.instr)])
        elif kind == "br_if":
            def dispatch(args: list) -> None:
                loc, (condition,) = loc_and_vals(args)
                analysis.br_if(loc, info.br_targets[(loc.func, loc.instr)],
                               bool(condition))
        elif kind == "br_table":
            def dispatch(args: list) -> None:
                loc, (table_index,) = loc_and_vals(args)
                table_info = info.br_tables[(loc.func, loc.instr)]
                analysis.br_table(loc, table_info.targets, table_info.default,
                                  table_index)
                _, ended = table_info.select(table_index)
                for event in ended:
                    analysis.end(event.end, event.kind, event.begin)
        elif kind == "if":
            def dispatch(args: list) -> None:
                loc, (condition,) = loc_and_vals(args)
                analysis.if_(loc, bool(condition))
        elif kind == "begin":
            block_type = payload[0]
            def dispatch(args: list) -> None:
                loc, _ = loc_and_vals(args)
                analysis.begin(loc, block_type)
        elif kind == "end":
            block_type = payload[0]
            def dispatch(args: list) -> None:
                loc, _ = loc_and_vals(args)
                begin = info.begin_of_end[(loc.func, loc.instr, block_type)]
                analysis.end(loc, block_type, begin)
        elif kind == "nop":
            def dispatch(args: list) -> None:
                loc, _ = loc_and_vals(args)
                analysis.nop(loc)
        elif kind == "unreachable":
            def dispatch(args: list) -> None:
                loc, _ = loc_and_vals(args)
                analysis.unreachable(loc)
        else:  # pragma: no cover - registry only produces known kinds
            raise ValueError(f"unknown hook kind {kind!r}")

        return dispatch
