"""Extension: overhead of the *real* Table-4 analyses (not just empty hooks).

The paper's Figure 9 measures instrumentation overhead with empty
analyses; a natural follow-up question for adopters is what the shipped
analyses cost end-to-end. This benchmark runs each Table-4 analysis on one
PolyBench kernel and reports relative runtimes, ordered by the hooks they
subscribe to (selective instrumentation at work: the begin-only profiler
is far cheaper than the all-hooks taint analysis).
"""

from __future__ import annotations

import time

from repro.analyses import (BasicBlockProfiler, BranchCoverage,
                            CallGraphAnalysis, CryptominerDetector,
                            InstructionCoverage, InstructionMixAnalysis,
                            MemoryTracer, TaintAnalysis)
from repro.core import AnalysisSession
from repro.eval import baseline_runtime, polybench_workloads, render_table


def test_real_analyses_overhead(benchmark, write_report):
    workload = polybench_workloads(["trisolv"])[0]
    base = baseline_runtime(workload, repeats=2)

    def timed(analysis_factory) -> float:
        best = float("inf")
        for _ in range(2):
            analysis = analysis_factory()
            session = AnalysisSession(workload.module(), analysis,
                                      linker=workload.linker())
            start = time.perf_counter()
            session.invoke(workload.entry, workload.args)
            best = min(best, time.perf_counter() - start)
        return best

    analyses = [
        ("Basic block profiling", BasicBlockProfiler),
        ("Call graph", CallGraphAnalysis),
        ("Memory tracing", MemoryTracer),
        ("Cryptominer detection", CryptominerDetector),
        ("Branch coverage", BranchCoverage),
        ("Instruction coverage", InstructionCoverage),
        ("Instruction mix", InstructionMixAnalysis),
        ("Taint analysis", TaintAnalysis),
    ]
    rows = []
    measured = {}
    for name, factory in analyses:
        elapsed = timed(factory)
        measured[name] = elapsed / base
        rows.append([name, f"{elapsed / base:.2f}x"])
    report = render_table(["Analysis", "Relative runtime (trisolv)"], rows,
                          title="Extension: real Table-4 analyses, end-to-end")
    write_report("analyses_overhead", report)

    # selective instrumentation: narrow analyses are much cheaper than
    # the all-hooks ones
    assert measured["Basic block profiling"] < measured["Instruction mix"]
    assert measured["Call graph"] < measured["Taint analysis"]

    benchmark.pedantic(lambda: timed(BasicBlockProfiler), rounds=1,
                       iterations=1)
