"""The engine self-profiler: opcode counting plus sampled call stacks.

The paper instruments *guest* programs; this module turns the same lens on
the host interpreter itself. When a profiler is attached
(``Telemetry(profile=True)`` → ``Machine(telemetry=...)``), the pre-decoded
engine routes execution through a counting twin of its hot loop
(``Machine._exec_profiled``) that

* increments one slot of a dense per-opcode array per executed instruction
  (exact dynamic opcode counts — streams are decoded *unfused* under the
  profiler, so counts attribute 1:1 to source instructions),
* increments one slot of a dense opcode-*pair* array for every pair of
  instructions executed back to back at adjacent pcs — exactly the pairs
  superinstruction fusion could merge; this is the input of the
  profile-guided pair selection in :mod:`repro.interp.pgo`,
* attributes executed-instruction counts to the function frame that ran
  them (exact per-function *self* work, the hot-function ranking), and
* every ``sample_interval`` instructions records the live Wasm call stack
  (the collapsed-stack output flamegraph tools consume).

Counting instructions rather than sampling wall-clock makes the profile
deterministic for a given guest execution — two runs of the same program
produce the same ranking — which is what the differential tests pin. The
profiler is strictly opt-in: without it the machine binds its ordinary
fused loop and pays nothing.
"""

from __future__ import annotations

from ..interp import predecode as _pd
from ..interp.predecode import N_OPCODES, OP_NAMES

#: Default instructions between two call-stack samples. Prime-ish, so
#: loops whose body length divides a round number don't alias the sampler.
DEFAULT_SAMPLE_INTERVAL = 4093

#: opcode id → coarse class, the grouping of the
#: ``repro_opcode_executions_total{class=...}`` metric.
OP_CLASSES: dict[int, str] = {
    _pd.OP_GET_LOCAL: "local", _pd.OP_SET_LOCAL: "local",
    _pd.OP_TEE_LOCAL: "local",
    _pd.OP_GET_GLOBAL: "global", _pd.OP_SET_GLOBAL: "global",
    _pd.OP_BINARY: "arith", _pd.OP_UNARY: "arith",
    _pd.OP_CONST: "const",
    _pd.OP_LOAD_INT: "memory", _pd.OP_LOAD_FLOAT: "memory",
    _pd.OP_STORE_INT: "memory", _pd.OP_STORE_FLOAT: "memory",
    _pd.OP_MEMORY_SIZE: "memory", _pd.OP_MEMORY_GROW: "memory",
    _pd.OP_BR: "control", _pd.OP_BR_IF: "control",
    _pd.OP_BR_TABLE: "control", _pd.OP_IF: "control",
    _pd.OP_BLOCK: "control", _pd.OP_LOOP: "control",
    _pd.OP_END: "control", _pd.OP_JUMP: "control",
    _pd.OP_RETURN: "control", _pd.OP_NOP: "control",
    _pd.OP_UNREACHABLE: "control", _pd.OP_RAISE: "control",
    _pd.OP_CALL: "call", _pd.OP_CALL_INDIRECT: "call",
    _pd.OP_SELECT: "stack", _pd.OP_DROP: "stack",
    _pd.OP_HOOK: "hook",
    # fused/quickened forms never execute under the profiler (unfused,
    # unquickened decode), but keep the map total so aggregation cannot
    # KeyError on streams from instances created before attach
    _pd.OP_GET_LOCAL_CONST: "fused", _pd.OP_CONST_BINARY: "fused",
    _pd.OP_GET_LOCAL_BINARY: "fused", _pd.OP_GET2_LOCAL: "fused",
    _pd.OP_BINARY_CONST: "fused", _pd.OP_BINARY_BINARY: "fused",
    _pd.OP_BINARY_GET_LOCAL: "fused", _pd.OP_CONST_GET_LOCAL: "fused",
    _pd.OP_CONST_CONST: "fused", _pd.OP_BINARY_SET_LOCAL: "fused",
    _pd.OP_BINARY_UNARY: "fused", _pd.OP_UNARY_BR_IF: "fused",
    _pd.OP_BINARY_LOAD_FLOAT: "fused", _pd.OP_BINARY_LOAD_INT: "fused",
    _pd.OP_BINARY_STORE_FLOAT: "fused", _pd.OP_BINARY_STORE_INT: "fused",
    _pd.OP_LOAD_FLOAT_BINARY: "fused", _pd.OP_LOAD_INT_BINARY: "fused",
    _pd.OP_SET_LOCAL_CONST: "fused", _pd.OP_LOAD_FLOAT_CONST: "fused",
    _pd.OP_QUICK: "memory", _pd.OP_QLOAD: "memory",
    _pd.OP_QLOAD_MASK: "memory", _pd.OP_QSTORE: "memory",
    _pd.OP_QSTORE_MASK: "memory",
    _pd.OP_CALL_INDIRECT_IC: "call",
    _pd.OP_SEGMENT: "fused",
}


class Profiler:
    """Accumulates opcode counts, per-function work, and stack samples.

    The engine's counting loop touches ``op_counts`` (a dense list indexed
    by opcode id) directly and calls :meth:`sample` on its sampling period;
    :meth:`enter`/:meth:`exit` bracket each Wasm function frame. Everything
    else is reporting.
    """

    def __init__(self, sample_interval: int = DEFAULT_SAMPLE_INTERVAL):
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.sample_interval = sample_interval
        self.op_counts: list[int] = [0] * N_OPCODES
        # dense (first, second) pair counts, indexed first * N_OPCODES +
        # second; charged by the counting loop whenever two instructions
        # execute back to back at adjacent pcs (the fusible pairs)
        self.pair_counts: list[int] = [0] * (N_OPCODES * N_OPCODES)
        self.func_counts: dict[str, int] = {}
        self.samples: dict[tuple[str, ...], int] = {}
        self.call_stack: list[str] = []
        # global instruction tick and the tick of the next stack sample;
        # the engine's counting loop advances ticks and compares inline
        self.ticks = 0
        self.next_sample = sample_interval

    # -- engine-facing recording ---------------------------------------------

    def enter(self, func_name: str) -> None:
        self.call_stack.append(func_name)

    def exit(self, executed: int) -> None:
        name = self.call_stack.pop()
        self.func_counts[name] = self.func_counts.get(name, 0) + executed

    def sample(self) -> None:
        key = tuple(self.call_stack)
        self.samples[key] = self.samples.get(key, 0) + 1
        self.next_sample = self.ticks + self.sample_interval

    # -- reporting -----------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        return sum(self.op_counts)

    def hot_functions(self, top: int = 10) -> list[tuple[str, int, float]]:
        """``(name, self_instructions, share)`` by executed work, descending."""
        total = sum(self.func_counts.values()) or 1
        ranked = sorted(self.func_counts.items(), key=lambda kv: -kv[1])
        return [(name, count, count / total) for name, count in ranked[:top]]

    def hot_opcodes(self, top: int = 10) -> list[tuple[str, int, float]]:
        """``(opcode_name, executions, share)`` descending."""
        total = self.total_instructions or 1
        ranked = sorted(
            ((OP_NAMES[op], count) for op, count in enumerate(self.op_counts)
             if count),
            key=lambda kv: -kv[1])
        return [(name, count, count / total) for name, count in ranked[:top]]

    @property
    def total_pairs(self) -> int:
        return sum(self.pair_counts)

    def hot_pairs(self, top: int = 10) -> list[tuple[str, str, int, float]]:
        """``(first_name, second_name, count, share)`` descending.

        A "pair" is two instructions executed back to back at adjacent
        decoded pcs — exactly the candidates superinstruction fusion could
        merge into one dispatch. Shares are of all executed pairs.
        """
        total = self.total_pairs or 1
        ranked = sorted(
            ((divmod(idx, N_OPCODES), count)
             for idx, count in enumerate(self.pair_counts) if count),
            key=lambda kv: -kv[1])
        return [(OP_NAMES[first], OP_NAMES[second], count, count / total)
                for (first, second), count in ranked[:top]]

    def opcode_class_counts(self) -> dict[str, int]:
        """Executed-instruction totals aggregated by opcode class."""
        totals: dict[str, int] = {}
        for op, count in enumerate(self.op_counts):
            if count:
                cls = OP_CLASSES[op]
                totals[cls] = totals.get(cls, 0) + count
        return totals

    def collapsed_stacks(self) -> str:
        """Samples in collapsed-stack format: ``main;fib;fib 42`` per line.

        Directly consumable by flamegraph.pl / inferno / speedscope.
        """
        lines = [f"{';'.join(stack)} {count}"
                 for stack, count in sorted(self.samples.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> dict:
        """The ``profile`` section of the metrics artifact."""
        return {
            "sample_interval": self.sample_interval,
            "total_instructions": self.total_instructions,
            "opcodes": {OP_NAMES[op]: count
                        for op, count in enumerate(self.op_counts) if count},
            "pairs": [[first, second, count]
                      for first, second, count, _ in
                      self.hot_pairs(top=len(self.pair_counts))],
            "opcode_classes": self.opcode_class_counts(),
            "functions": dict(sorted(self.func_counts.items(),
                                     key=lambda kv: -kv[1])),
            "samples": {";".join(stack): count
                        for stack, count in sorted(self.samples.items())},
        }
