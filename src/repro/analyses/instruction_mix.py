"""Instruction mix analysis (paper Table 4, row 1).

Counts how often each kind of instruction is executed — the basis for
performance and security analyses. Uses *all* hooks.
"""

from __future__ import annotations

from collections import Counter

from ..core.analysis import Analysis


class InstructionMixAnalysis(Analysis):
    """Counts executed instructions by mnemonic (or hook kind)."""

    def __init__(self):
        self.counts: Counter[str] = Counter()

    def _bump(self, key: str) -> None:
        self.counts[key] += 1

    # stack manipulation
    def const_(self, location, value):
        self._bump("const")

    def drop(self, location, value):
        self._bump("drop")

    def select(self, location, condition, first, second):
        self._bump("select")

    # operations
    def unary(self, location, op, input, result):
        self._bump(op)

    def binary(self, location, op, first, second, result):
        self._bump(op)

    # register and memory
    def local(self, location, op, index, value):
        self._bump(op)

    def global_(self, location, op, index, value):
        self._bump(op)

    def load(self, location, op, memarg, value):
        self._bump(op)

    def store(self, location, op, memarg, value):
        self._bump(op)

    def memory_size(self, location, current_size_pages):
        self._bump("memory.size")

    def memory_grow(self, location, delta, previous_size_pages):
        self._bump("memory.grow")

    # calls
    def call_pre(self, location, func, args, table_index):
        self._bump("call" if table_index is None else "call_indirect")

    def return_(self, location, results):
        self._bump("return")

    # control flow
    def br(self, location, target):
        self._bump("br")

    def br_if(self, location, target, condition):
        self._bump("br_if")

    def br_table(self, location, table, default_target, table_index):
        self._bump("br_table")

    def if_(self, location, condition):
        self._bump("if")

    def begin(self, location, block_type):
        self._bump(f"begin_{block_type}")

    def end(self, location, block_type, begin_location):
        self._bump(f"end_{block_type}")

    def nop(self, location):
        self._bump("nop")

    def unreachable(self, location):
        self._bump("unreachable")

    # reporting -----------------------------------------------------------------

    def total(self) -> int:
        return sum(self.counts.values())

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        return self.counts.most_common(n)

    def report(self) -> str:
        lines = ["instruction mix:"]
        for name, count in self.counts.most_common():
            lines.append(f"  {name:<24} {count}")
        return "\n".join(lines)
