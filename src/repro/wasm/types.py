"""Type system primitives of WebAssembly (MVP).

WebAssembly knows four primitive *value types* (i32, i64, f32, f64),
*function types* mapping parameter lists to result lists, *limits* for
memories and tables, *global types* (value type + mutability), and
*external types* classifying imports/exports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ValType(enum.Enum):
    """A primitive WebAssembly value type."""

    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"

    @property
    def is_int(self) -> bool:
        return self in (ValType.I32, ValType.I64)

    @property
    def is_float(self) -> bool:
        return self in (ValType.F32, ValType.F64)

    @property
    def bit_width(self) -> int:
        return {ValType.I32: 32, ValType.I64: 64, ValType.F32: 32, ValType.F64: 64}[self]

    @property
    def byte_width(self) -> int:
        return self.bit_width // 8

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @staticmethod
    def from_str(name: str) -> "ValType":
        try:
            return _VALTYPE_BY_NAME[name]
        except KeyError:
            raise ValueError(f"unknown value type {name!r}") from None


_VALTYPE_BY_NAME = {t.value: t for t in ValType}

I32 = ValType.I32
I64 = ValType.I64
F32 = ValType.F32
F64 = ValType.F64

#: Binary-format encodings of value types (and the empty block type).
VALTYPE_TO_BYTE = {I32: 0x7F, I64: 0x7E, F32: 0x7D, F64: 0x7C}
BYTE_TO_VALTYPE = {v: k for k, v in VALTYPE_TO_BYTE.items()}
EMPTY_BLOCKTYPE_BYTE = 0x40


@dataclass(frozen=True)
class FuncType:
    """A function type ``[params] -> [results]``.

    The MVP binary format restricts results to at most one value; the
    encoder enforces this, while the in-memory representation already
    supports multiple results (as the paper notes the formal semantics do).
    """

    params: tuple[ValType, ...] = ()
    results: tuple[ValType, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "results", tuple(self.results))

    def __str__(self) -> str:
        ps = " ".join(map(str, self.params)) or "ε"
        rs = " ".join(map(str, self.results)) or "ε"
        return f"[{ps}] -> [{rs}]"


@dataclass(frozen=True)
class Limits:
    """Size limits of a memory (in 64 KiB pages) or table (in entries)."""

    minimum: int
    maximum: int | None = None

    def __post_init__(self):
        if self.minimum < 0:
            raise ValueError("limits minimum must be non-negative")
        if self.maximum is not None and self.maximum < self.minimum:
            raise ValueError("limits maximum must be >= minimum")

    def contains(self, size: int) -> bool:
        if size < self.minimum:
            return False
        return self.maximum is None or size <= self.maximum


@dataclass(frozen=True)
class GlobalType:
    """Type of a global variable: a value type plus mutability."""

    valtype: ValType
    mutable: bool = False


@dataclass(frozen=True)
class TableType:
    """Type of a table. The MVP only supports ``funcref`` elements."""

    limits: Limits = field(default_factory=lambda: Limits(0))


@dataclass(frozen=True)
class MemoryType:
    """Type of a linear memory, sized in 64 KiB pages."""

    limits: Limits = field(default_factory=lambda: Limits(0))


#: Size of one linear-memory page in bytes.
PAGE_SIZE = 65536

#: Hard upper bound of pages addressable with 32-bit addresses.
MAX_PAGES = 65536
