"""The telemetry subsystem: metrics, spans, profiler, and their wiring.

Covers the observability contract end to end: exporter round-trips
(JSON/Prometheus/JSONL/Chrome-trace), disabled-telemetry differentials
(telemetry must not change observable behaviour on either engine), the
counter-vs-fuel invariant (telemetry charges at exactly the Meter's charge
sites), per-hook latency histograms under an injected clock, structured
fault events, pipeline spans, the self-profiler, and the CLI surface
(``--metrics-out``/``--trace-out``/``--profile``/``-v``/``repro report``).
"""

from __future__ import annotations

import json
from itertools import count

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cli import main
from repro.core import Analysis, AnalysisSession
from repro.interp import Linker, Machine, ResourceLimits
from repro.minic import compile_source
from repro.obs import (HOOK_LATENCY_BUCKETS, METRICS_SCHEMA, Histogram,
                       MetricsRegistry, Telemetry, Tracer, measure,
                       parse_prometheus, render_report, spans_from_chrome_trace,
                       spans_from_jsonl, spans_to_chrome_trace, spans_to_jsonl)

ENGINES = [True, False]


def fake_clock(step: float = 1e-3):
    """A deterministic clock advancing ``step`` per reading."""
    ticks = count()
    return lambda: next(ticks) * step


@pytest.fixture
def spin_module():
    return compile_source("""
        export func spin(n: i32) -> i32 {
            var i: i32 = 0;
            var acc: i32 = 0;
            while (i < n) {
                acc = acc + i;
                i = i + 1;
            }
            return acc;
        }
    """, "spin")


@pytest.fixture
def fib_module():
    return compile_source("""
        export func fib(n: i32) -> i32 {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        export func main() -> i32 { return fib(12); }
    """, "fib")


@pytest.fixture
def grow_module():
    return compile_source("""
        memory 1;
        export func grow(delta: i32) -> i32 {
            return memory_grow(delta);
        }
    """, "grow")


# -- metrics primitives --------------------------------------------------------


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x", labels={"a": "b"})

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"k": "v"})
        b = registry.counter("c", labels={"k": "v"})
        assert a is b
        assert registry.counter("c", labels={"k": "other"}) is not a
        assert len(registry.series("c")) == 2

    def test_histogram_buckets_and_stats(self):
        hist = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]  # one per bucket + overflow
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)
        assert hist.mean == pytest.approx(55.55 / 4)
        assert hist.quantile(0.25) == 0.1
        assert hist.quantile(1.0) == 10.0  # overflow reports last bound

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.1))

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", help="calls").inc(7)
        registry.gauge("pages", labels={"mem": "0"}).set(3)
        hist = registry.histogram("lat", labels={"hook": "h"},
                                  buckets=HOOK_LATENCY_BUCKETS)
        hist.observe(1e-6)
        hist.observe(5e-3)
        restored = MetricsRegistry.from_dict(registry.as_dict())
        assert restored.as_dict() == registry.as_dict()
        back = restored.get("lat", {"hook": "h"})
        assert back.count == 2 and back.sum == pytest.approx(hist.sum)

    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", help="total calls").inc(3)
        registry.gauge("pages").set(2)
        hist = registry.histogram("lat", labels={"hook": "binary_i32_add"},
                                  buckets=(1e-6, 1e-3))
        hist.observe(5e-7)
        hist.observe(5e-4)
        hist.observe(5.0)
        text = registry.to_prometheus()
        assert "# TYPE calls_total counter" in text
        assert "# HELP calls_total total calls" in text
        samples = parse_prometheus(text)
        assert samples["calls_total"] == 3
        assert samples["pages"] == 2
        # cumulative bucket rendering
        assert samples['lat_bucket{hook="binary_i32_add",le="1e-06"}'] == 1
        assert samples['lat_bucket{hook="binary_i32_add",le="0.001"}'] == 2
        assert samples['lat_bucket{hook="binary_i32_add",le="+Inf"}'] == 3
        assert samples['lat_count{hook="binary_i32_add"}'] == 3


# -- spans ---------------------------------------------------------------------


class TestSpans:
    def test_nesting_depth_and_order(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("outer"):
            with tracer.span("inner", k="v"):
                pass
        # completion order: children first
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert inner.depth == 1 and outer.depth == 0
        assert inner.attrs == {"k": "v"}
        assert outer.duration == pytest.approx(3e-3)  # 3 clock reads inside

    def test_jsonl_round_trip(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("decode", path="a.wasm"):
            pass
        restored = spans_from_jsonl(spans_to_jsonl(tracer.spans))
        assert [(s.name, s.start, s.duration, s.depth, s.attrs)
                for s in restored] == \
               [(s.name, s.start, s.duration, s.depth, s.attrs)
                for s in tracer.spans]

    def test_chrome_trace_round_trip(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("invoke", export="main"):
            pass
        payload = spans_to_chrome_trace(tracer.spans)
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events[0]["ph"] == "M"  # process metadata
        x = [e for e in events if e["ph"] == "X"]
        assert len(x) == 1
        assert x[0]["name"] == "invoke"
        assert x[0]["dur"] == pytest.approx(1e3)  # 1ms in µs
        assert x[0]["args"] == {"export": "main"}
        restored = spans_from_chrome_trace(payload)
        assert restored[0].name == "invoke"
        assert restored[0].duration == pytest.approx(1e-3)

    def test_measure_is_deterministic_under_fake_clock(self):
        durations = measure(lambda: None, 5, clock=fake_clock(2e-3))
        assert durations == [pytest.approx(2e-3)] * 5


# -- engine counters -----------------------------------------------------------


class TestEngineCounters:
    @pytest.mark.parametrize("predecode", ENGINES)
    def test_counts_calls_and_branches(self, spin_module, predecode):
        tele = Telemetry()
        machine = Machine(predecode=predecode, telemetry=tele)
        machine.instantiate(spin_module, Linker()).invoke("spin", [10])
        assert tele.n_calls == 1
        # one taken back-edge per iteration, plus the loop-exit branch
        assert tele.n_branches == 11
        assert tele.n_traps == 0

    def test_engines_agree_on_counters(self, fib_module):
        counts = []
        for predecode in ENGINES:
            tele = Telemetry()
            machine = Machine(predecode=predecode, telemetry=tele)
            machine.instantiate(fib_module, Linker()).invoke("main", [])
            counts.append((tele.n_calls, tele.n_branches, tele.n_host_calls))
        assert counts[0] == counts[1]

    @pytest.mark.parametrize("predecode", ENGINES)
    def test_memory_grow_counted(self, grow_module, predecode):
        tele = Telemetry()
        machine = Machine(predecode=predecode, telemetry=tele)
        instance = machine.instantiate(grow_module, Linker())
        instance.invoke("grow", [2])
        instance.invoke("grow", [1])
        assert tele.n_mem_grow == 2
        assert tele.mem_pages == 4  # 1 initial + 2 + 1

    @pytest.mark.parametrize("predecode", ENGINES)
    def test_trap_counted_once(self, predecode):
        module = compile_source("""
            memory 1;
            export func boom() -> i32 { return mem_i32[70000]; }
            export func indirect_boom() -> i32 { return boom(); }
        """, "trap")
        from repro.wasm.errors import Trap
        tele = Telemetry()
        machine = Machine(predecode=predecode, telemetry=tele)
        instance = machine.instantiate(module, Linker())
        with pytest.raises(Trap):
            instance.invoke("indirect_boom", [])
        # one trap, even though it unwound through two frames
        assert tele.n_traps == 1

    @pytest.mark.parametrize("predecode", ENGINES)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(fuel=st.integers(min_value=1, max_value=2000),
           arg=st.integers(min_value=0, max_value=500))
    def test_counters_match_fuel_charges(self, spin_module, predecode,
                                         fuel, arg):
        """Hypothesis: telemetry charges at exactly the Meter's charge
        sites, so calls + branches == fuel spent — with any budget, on
        either engine, whether or not the run exhausts."""
        from repro.wasm.errors import FuelExhausted
        tele = Telemetry()
        machine = Machine(predecode=predecode, telemetry=tele,
                          limits=ResourceLimits(fuel=fuel))
        instance = machine.instantiate(spin_module, Linker())
        try:
            instance.invoke("spin", [arg])
        except FuelExhausted:
            pass
        assert tele.n_calls + tele.n_branches == \
            machine.resource_usage().fuel_spent


class TestDisabledTelemetryDifferential:
    @pytest.mark.parametrize("predecode", ENGINES)
    def test_results_identical_with_and_without_telemetry(
            self, spin_module, fib_module, predecode):
        for module, entry, args in ((spin_module, "spin", [123]),
                                    (fib_module, "main", [])):
            plain = Machine(predecode=predecode).instantiate(
                module, Linker()).invoke(entry, args)
            tele = Machine(predecode=predecode,
                           telemetry=Telemetry()).instantiate(
                module, Linker()).invoke(entry, args)
            assert plain == tele

    def test_profiled_results_identical(self, fib_module):
        plain = Machine(predecode=True).instantiate(
            fib_module, Linker()).invoke("main", [])
        profiled = Machine(predecode=True,
                           telemetry=Telemetry(profile=True)).instantiate(
            fib_module, Linker()).invoke("main", [])
        assert plain == profiled

    def test_instruction_counts_identical_across_engines(self, fib_module):
        """The profiler's dynamic instruction count is an engine-independent
        property of the guest execution: counter totals (and profiled
        results) must not depend on telemetry being attached elsewhere."""
        runs = []
        for _ in range(2):
            tele = Telemetry(profile=True)
            machine = Machine(predecode=True, telemetry=tele)
            machine.instantiate(fib_module, Linker()).invoke("main", [])
            runs.append((tele.profiler.total_instructions,
                         dict(tele.profiler.func_counts)))
        assert runs[0] == runs[1]


# -- the self-profiler ---------------------------------------------------------


class TestProfiler:
    def test_hot_function_ranking(self, fib_module):
        tele = Telemetry(profile=True, sample_interval=50)
        machine = Machine(predecode=True, telemetry=tele)
        machine.instantiate(fib_module, Linker()).invoke("main", [])
        profiler = tele.profiler
        assert profiler.total_instructions > 0
        (top_name, top_count, top_share), *_ = profiler.hot_functions()
        assert top_name == "fib"
        assert top_share > 0.9
        names = [name for name, _, _ in profiler.hot_opcodes()]
        assert "get_local" in names

    def test_collapsed_stack_format(self, fib_module):
        tele = Telemetry(profile=True, sample_interval=25)
        machine = Machine(predecode=True, telemetry=tele)
        machine.instantiate(fib_module, Linker()).invoke("main", [])
        collapsed = tele.profiler.collapsed_stacks()
        assert collapsed
        for line in collapsed.strip().splitlines():
            stack, _, weight = line.rpartition(" ")
            assert int(weight) >= 1
            assert stack.split(";")[0] == "main"

    def test_profiler_requires_predecode(self):
        with pytest.raises(ValueError, match="pre-decoded"):
            Machine(predecode=False, telemetry=Telemetry(profile=True))

    def test_profiler_with_instrumented_module(self, fib_module):
        """Profiled execution handles OP_HOOK sites (instrumented runs)."""
        class Counting(Analysis):
            def __init__(self):
                self.calls = 0

            def call_pre(self, location, target, args, table_index):
                self.calls += 1

        tele = Telemetry(profile=True)
        analysis = Counting()
        session = AnalysisSession(fib_module, analysis, telemetry=tele,
                                  machine=Machine(predecode=True))
        result = session.invoke("main", [])
        assert result == [144]
        assert analysis.calls > 0
        assert tele.profiler.total_instructions > 0

    def test_attach_telemetry_idempotent_and_exclusive(self, fib_module):
        tele = Telemetry()
        machine = Machine(telemetry=tele)
        machine.attach_telemetry(tele)  # same sink: no-op
        with pytest.raises(ValueError, match="different telemetry"):
            machine.attach_telemetry(Telemetry())


# -- hook latency & fault events ----------------------------------------------


class _Raising(Analysis):
    def binary(self, location, op, first, second, result):
        raise ZeroDivisionError("hook boom")


class TestRuntimeTelemetry:
    def test_hook_latency_histograms(self, fib_module):
        class CountingMix(Analysis):
            def __init__(self):
                self.events = 0

            def binary(self, location, op, first, second, result):
                self.events += 1

        tele = Telemetry(clock=fake_clock())
        analysis = CountingMix()
        session = AnalysisSession(fib_module, analysis, telemetry=tele)
        session.invoke("main", [])
        assert analysis.events > 0
        series = tele.registry.series("repro_hook_latency_seconds")
        assert series, "per-hook latency histograms must exist"
        assert all(dict(h.labels)["hook"].startswith("binary_")
                   for h in series)
        total = sum(h.count for h in series)
        assert total == analysis.events
        # the fake clock advances 1ms per reading: every dispatch is ~1ms
        for hist in series:
            assert hist.sum == pytest.approx(hist.count * 1e-3)

    @pytest.mark.parametrize("policy", ["log", "quarantine"])
    def test_fault_events_routed_through_telemetry(self, fib_module, policy,
                                                   capsys):
        tele = Telemetry()
        session = AnalysisSession(fib_module, _Raising(), telemetry=tele,
                                  on_analysis_error=policy)
        session.invoke("main", [])
        faults = [e for e in tele.events if e.kind == "hook_fault"]
        assert faults
        first = faults[0]
        assert first.fields["exception"] == "ZeroDivisionError"
        assert first.fields["hook"].startswith("binary_")
        assert first.fields["policy"] == policy
        assert first.fields["func"] is not None
        if policy == "quarantine":
            assert any(e.kind == "hook_quarantined" for e in tele.events)
        # the event log replaces stderr printing
        assert "contained" not in capsys.readouterr().err
        assert session.hook_faults  # the fault record itself is unchanged

    def test_stderr_printing_without_telemetry(self, fib_module, capsys):
        session = AnalysisSession(fib_module, _Raising(),
                                  on_analysis_error="log")
        session.invoke("main", [])
        assert "contained" in capsys.readouterr().err


# -- the telemetry façade ------------------------------------------------------


class TestTelemetryFacade:
    def test_session_pipeline_spans(self, fib_module):
        tele = Telemetry()
        session = AnalysisSession(fib_module, Analysis(), telemetry=tele)
        session.invoke("main", [])
        names = [s.name for s in tele.tracer.spans]
        assert names == ["instrument", "instantiate", "invoke"]
        invoke = tele.tracer.spans[-1]
        assert invoke.attrs == {"export": "main"}

    def test_snapshot_idempotent(self, fib_module):
        tele = Telemetry()
        machine = Machine(telemetry=tele)
        machine.instantiate(fib_module, Linker()).invoke("main", [])
        first = tele.snapshot().as_dict()
        second = tele.snapshot().as_dict()
        assert first == second  # spans folded once, counters set not inc'd
        stage = tele.registry.series("repro_stage_seconds")
        assert sum(h.count for h in stage) == len(tele.tracer.spans)

    def test_metrics_payload_schema(self, fib_module):
        tele = Telemetry(profile=True)
        machine = Machine(predecode=True, telemetry=tele)
        machine.instantiate(fib_module, Linker()).invoke("main", [])
        payload = tele.metrics_payload(machine.resource_usage())
        assert payload["schema"] == METRICS_SCHEMA
        counters = {c["name"]: c["value"]
                    for c in payload["metrics"]["counters"]}
        assert counters["repro_calls_total"] == tele.n_calls
        assert payload["profile"]["total_instructions"] > 0
        # the payload is a faithful registry round-trip
        assert MetricsRegistry.from_dict(payload["metrics"]).as_dict() == \
            payload["metrics"]

    def test_render_report_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            render_report({"schema": "bogus/9"})

    def test_render_report_contents(self, fib_module):
        tele = Telemetry(profile=True)
        machine = Machine(predecode=True, telemetry=tele)
        machine.instantiate(fib_module, Linker()).invoke("main", [])
        report = render_report(tele.metrics_payload(machine.resource_usage()))
        assert "repro_calls_total" in report
        assert "hot functions" in report
        assert "fib" in report

    def test_usage_gauges_and_summary(self, spin_module):
        tele = Telemetry()
        machine = Machine(telemetry=tele,
                          limits=ResourceLimits(observe=True))
        machine.instantiate(spin_module, Linker()).invoke("spin", [10])
        usage = machine.resource_usage()
        assert usage.fuel_spent == 12  # 1 call + 11 taken branches
        registry = tele.snapshot(usage)
        assert registry.get("repro_fuel_spent").value == 12
        assert "fuel_spent=12" in usage.summary()


# -- eval harness through the obs API -----------------------------------------


class TestEvalTelemetry:
    def test_overhead_sweep_deterministic_under_fake_clock(self, spin_module):
        from repro.eval.overhead import overhead_sweep
        from repro.eval.workloads import Workload
        workload = Workload(name="spin", group="test",
                            module_fn=lambda: spin_module, entry="spin",
                            args=(50,), needs_print=False)
        tracer = Tracer(clock=fake_clock())
        reports = overhead_sweep(workload, configs=["call"], repeats=2,
                                 include_all=False, clock=fake_clock(),
                                 tracer=tracer)
        (report,) = reports
        # every repeat is exactly one fake-clock step on both sides
        assert report.baseline_seconds == pytest.approx(1e-3)
        assert report.instrumented_seconds == pytest.approx(1e-3)
        assert report.relative_runtime == pytest.approx(1.0)
        names = {s.name for s in tracer.spans}
        assert names == {"baseline_invoke", "instrumented_invoke"}

    def test_time_workload_records_spans(self, spin_module):
        from repro.eval.timing import time_workload
        from repro.eval.workloads import Workload
        workload = Workload(name="spin", group="test",
                            module_fn=lambda: spin_module, entry="spin",
                            args=(10,), needs_print=False)
        tracer = Tracer(clock=fake_clock())
        best = time_workload(workload, repeats=3, tracer=tracer)
        assert best == pytest.approx(1e-3)
        spans = [s for s in tracer.spans if s.name == "workload_invoke"]
        assert len(spans) == 3
        assert spans[0].attrs["workload"] == "spin"


# -- CLI surface ---------------------------------------------------------------


@pytest.fixture
def fib_wasm(tmp_path, fib_module):
    from repro.wasm import encode_module
    path = tmp_path / "fib.wasm"
    path.write_bytes(encode_module(fib_module))
    return path


class TestCli:
    def test_run_verbose_reports_usage(self, fib_wasm, capsys):
        assert main(["run", str(fib_wasm), "main", "-v"]) == 0
        err = capsys.readouterr().err
        assert "resource usage:" in err
        assert "fuel_spent=" in err
        assert "peak_depth=" in err

    def test_run_writes_metrics_and_trace(self, fib_wasm, tmp_path, capsys,
                                          monkeypatch):
        # --profile needs the pre-decoded engine even under REPRO_PREDECODE=0
        monkeypatch.setenv("REPRO_PREDECODE", "1")
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        assert main(["run", str(fib_wasm), "main", "--profile",
                     "--metrics-out", str(metrics),
                     "--trace-out", str(trace)]) == 0
        payload = json.loads(metrics.read_text())
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["profile"]["total_instructions"] > 0
        chrome = json.loads(trace.read_text())
        assert chrome["displayTimeUnit"] == "ms"
        names = [e["name"] for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert names == ["decode", "instantiate", "invoke"]
        # capsys drained so artifact notices don't leak into other tests
        assert "metrics written" in capsys.readouterr().err

    def test_run_prometheus_and_jsonl_formats(self, fib_wasm, tmp_path,
                                              capsys):
        prom = tmp_path / "m.prom"
        jsonl = tmp_path / "t.jsonl"
        assert main(["run", str(fib_wasm), "main", "--analysis", "mix",
                     "--metrics-out", str(prom),
                     "--trace-out", str(jsonl)]) == 0
        capsys.readouterr()
        samples = parse_prometheus(prom.read_text())
        assert samples["repro_calls_total"] > 0
        assert any(name.startswith("repro_hook_latency_seconds_bucket")
                   for name in samples)
        spans = spans_from_jsonl(jsonl.read_text())
        assert [s.name for s in spans] == \
            ["decode", "instrument", "instantiate", "invoke"]

    def test_report_renders_metrics_artifact(self, fib_wasm, tmp_path,
                                             capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PREDECODE", "1")
        metrics = tmp_path / "m.json"
        assert main(["run", str(fib_wasm), "main", "--profile",
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["report", str(metrics), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "hot functions" in out

    def test_report_rejects_non_artifact(self, tmp_path, capsys):
        bogus = tmp_path / "x.json"
        bogus.write_text("{}")
        assert main(["report", str(bogus)]) == 1
        assert "not a repro metrics artifact" in capsys.readouterr().err

    def test_instrument_telemetry_spans(self, fib_wasm, tmp_path, capsys):
        out_wasm = tmp_path / "out.wasm"
        trace = tmp_path / "t.jsonl"
        assert main(["instrument", str(fib_wasm), "-o", str(out_wasm),
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert [s.name for s in spans_from_jsonl(trace.read_text())] == \
            ["decode", "instrument", "encode"]

    def test_fuzz_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "fuzz.json"
        assert main(["fuzz", "--mutants", "20", "--no-execute",
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        payload = json.loads(metrics.read_text())
        counters = {c["name"] for c in payload["metrics"]["counters"]}
        assert "repro_fuzz_escapes_total" in counters
