"""Linear memory: a page-granular, bounds-checked byte array.

WebAssembly memory is a linear sequence of bytes grown in 64 KiB pages
(paper §2.2). All out-of-bounds accesses trap.
"""

from __future__ import annotations

import struct

from ..wasm.errors import SnapshotError, Trap
from ..wasm.types import MAX_PAGES, PAGE_SIZE, Limits


class Memory:
    """A linear memory instance.

    ``policy_max_pages`` is an optional host-imposed cap (from
    :class:`repro.interp.limits.ResourceLimits.max_memory_pages`) layered on
    top of the declared :class:`Limits`: ``grow`` past it fails with -1
    exactly like growing past the declared maximum, so a guest under a
    tight host budget observes ordinary grow-failure semantics rather than
    a trap.
    """

    def __init__(self, limits: Limits, policy_max_pages: int | None = None):
        self.limits = limits
        self.policy_max_pages = policy_max_pages
        self.data = bytearray(limits.minimum * PAGE_SIZE)

    @property
    def size_pages(self) -> int:
        return len(self.data) // PAGE_SIZE

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    def grow(self, delta_pages: int) -> int:
        """Grow by ``delta_pages``; returns the previous size in pages or -1.

        Growth is bounded by the declared ``Limits.maximum``, the 65536-page
        spec hard cap, and the host ``policy_max_pages``; exceeding any of
        them returns -1 and never raises. ``grow 0`` succeeds (returning the
        current size) whenever the current size is within bounds.
        """
        previous = self.size_pages
        new_size = previous + delta_pages
        maximum = self.limits.maximum if self.limits.maximum is not None else MAX_PAGES
        if self.policy_max_pages is not None:
            maximum = min(maximum, self.policy_max_pages)
        if delta_pages < 0 or new_size > maximum or new_size > MAX_PAGES:
            return -1
        self.data.extend(bytes(delta_pages * PAGE_SIZE))
        return previous

    # -- state capture (repro.interp.snapshot) --------------------------------

    def snapshot_pages(self) -> dict[int, bytes]:
        """Sparse capture: the non-zero 64 KiB pages, keyed by page index.

        WebAssembly memory is zero-initialized, so pages that are still
        all-zero carry no information; a snapshot stores only the rest
        (plus the total size, kept by the caller).
        """
        pages: dict[int, bytes] = {}
        data = self.data
        for idx in range(self.size_pages):
            chunk = bytes(data[idx * PAGE_SIZE:(idx + 1) * PAGE_SIZE])
            if chunk.count(0) != PAGE_SIZE:
                pages[idx] = chunk
        return pages

    def restore_pages(self, size_pages: int, pages: dict[int, bytes]) -> None:
        """Replace the entire contents from a sparse page capture.

        Resizes to ``size_pages`` (the bytearray identity is preserved, so
        engine-cached references stay valid), zeroes everything, and writes
        the captured pages back.
        """
        for idx, chunk in pages.items():
            if idx < 0 or idx >= size_pages or len(chunk) > PAGE_SIZE:
                raise SnapshotError(
                    f"snapshot page {idx} outside restored memory of "
                    f"{size_pages} pages")
        self.data[:] = bytes(size_pages * PAGE_SIZE)
        for idx, chunk in pages.items():
            self.data[idx * PAGE_SIZE:idx * PAGE_SIZE + len(chunk)] = chunk

    def _check(self, addr: int, width: int, what: str) -> None:
        if addr < 0 or addr + width > len(self.data):
            raise Trap(f"out of bounds memory access ({what} of {width} bytes "
                       f"at address {addr}, memory is {len(self.data)} bytes)")

    # -- raw byte access ------------------------------------------------------

    def read(self, addr: int, width: int) -> bytes:
        self._check(addr, width, "load")
        return bytes(self.data[addr:addr + width])

    def write(self, addr: int, payload: bytes) -> None:
        self._check(addr, len(payload), "store")
        self.data[addr:addr + len(payload)] = payload

    # -- typed loads ------------------------------------------------------------
    # Integers are returned in canonical unsigned representation.

    def load(self, op: str, addr: int) -> int | float:
        loader = LOADERS[op]
        return loader(self, addr)

    def store(self, op: str, addr: int, value: int | float) -> None:
        storer = STORERS[op]
        storer(self, addr, value)


def _int_loader(width: int, signed: bool, out_bits: int):
    mask = (1 << out_bits) - 1

    def load(memory: Memory, addr: int) -> int:
        raw = memory.read(addr, width)
        value = int.from_bytes(raw, "little", signed=signed)
        return value & mask

    return load


def _float_loader(fmt: str, width: int):
    def load(memory: Memory, addr: int) -> float:
        return struct.unpack(fmt, memory.read(addr, width))[0]

    return load


def _int_storer(width: int):
    mask = (1 << (8 * width)) - 1

    def store(memory: Memory, addr: int, value: int) -> None:
        memory.write(addr, (value & mask).to_bytes(width, "little"))

    return store


def _float_storer(fmt: str):
    def store(memory: Memory, addr: int, value: float) -> None:
        memory.write(addr, struct.pack(fmt, value))

    return store


LOADERS = {
    "i32.load": _int_loader(4, False, 32),
    "i64.load": _int_loader(8, False, 64),
    "f32.load": _float_loader("<f", 4),
    "f64.load": _float_loader("<d", 8),
    "i32.load8_s": _int_loader(1, True, 32),
    "i32.load8_u": _int_loader(1, False, 32),
    "i32.load16_s": _int_loader(2, True, 32),
    "i32.load16_u": _int_loader(2, False, 32),
    "i64.load8_s": _int_loader(1, True, 64),
    "i64.load8_u": _int_loader(1, False, 64),
    "i64.load16_s": _int_loader(2, True, 64),
    "i64.load16_u": _int_loader(2, False, 64),
    "i64.load32_s": _int_loader(4, True, 64),
    "i64.load32_u": _int_loader(4, False, 64),
}

STORERS = {
    "i32.store": _int_storer(4),
    "i64.store": _int_storer(8),
    "f32.store": _float_storer("<f"),
    "f64.store": _float_storer("<d"),
    "i32.store8": _int_storer(1),
    "i32.store16": _int_storer(2),
    "i64.store8": _int_storer(1),
    "i64.store16": _int_storer(2),
    "i64.store32": _int_storer(4),
}
