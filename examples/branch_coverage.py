"""Branch coverage of a test suite (paper Figure 7).

An analysis that records, for every conditional (if / br_if / br_table /
select), which directions were exercised — the exact analysis of the
paper's Figure 7. We run a small "test suite" against a module and watch
coverage improve as tests are added, then report the conditionals that
remain one-sided.

Run:  python examples/branch_coverage.py
"""

from repro import analyze
from repro.analyses import BranchCoverage
from repro.minic import compile_source

LIBRARY = """
export func classify(x: i32) -> i32 {
    // 0: negative, 1: zero, 2: small, 3: large
    if (x < 0) { return 0; }
    if (x == 0) { return 1; }
    if (x < 100) { return 2; }
    return 3;
}

export func clamp(x: i32, lo: i32, hi: i32) -> i32 {
    return select(x < lo, lo, select(x > hi, hi, x));
}
"""

TEST_SUITE = [
    ("classify", (5,)),
    ("classify", (500,)),
    ("clamp", (10, 0, 100)),
    # intentionally missing: negative/zero inputs, out-of-range clamps
]

EXTRA_TESTS = [
    ("classify", (-3,)),
    ("classify", (0,)),
    ("clamp", (-5, 0, 100)),
    ("clamp", (500, 0, 100)),
]


def report(coverage, label):
    fully = coverage.fully_covered()
    partial = coverage.partially_covered()
    print(f"{label}: {coverage.ratio():.0%} of {len(coverage.branches)} "
          f"conditionals fully covered")
    for loc in sorted(partial):
        outcomes = coverage.branches[loc]
        print(f"  one-sided conditional at {loc}: only saw {sorted(outcomes)}")
    print()


def main():
    module = compile_source(LIBRARY, "library")
    coverage = BranchCoverage()
    session = analyze(module, coverage)

    for entry, args in TEST_SUITE:
        session.invoke(entry, args)
    report(coverage, "after the initial test suite")

    for entry, args in EXTRA_TESTS:
        session.invoke(entry, args)
    report(coverage, "after adding the missing edge-case tests")

    assert coverage.ratio() == 1.0
    print("all conditionals covered in both directions.")


if __name__ == "__main__":
    main()
