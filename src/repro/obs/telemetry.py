"""The telemetry façade: one object wiring metrics, spans, events, profiling.

``Telemetry`` is what flows through the stack — ``Machine(telemetry=...)``,
``AnalysisSession(telemetry=...)``, ``WasabiRuntime(telemetry=...)``, and
the CLI's ``--metrics-out``/``--trace-out``/``--profile`` flags all share
one instance per run. Design rules, in order:

1. **The disabled path is (near-)free.** No telemetry object → the engines
   bind their ordinary loops and every charge site is a single hoisted
   ``tele is not None`` test, exactly the
   :class:`~repro.interp.limits.Meter` discipline. The interpreter
   therefore charges *raw integer fields on this object*
   (``n_calls``/``n_branches``/…), not metric objects; :meth:`snapshot`
   folds them into the registry idempotently afterwards.
2. **One clock.** The tracer, the hook-latency histograms, and the event
   log all read the injected ``clock`` — deterministic under a fake clock.
3. **Artifacts are plain data.** ``write_metrics`` emits JSON (or
   Prometheus text for ``.prom`` paths), ``write_trace`` emits Chrome
   trace-event JSON (or span JSONL for ``.jsonl`` paths), and
   :func:`render_report` turns a metrics artifact back into the
   human-readable summary behind ``repro report``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from .metrics import (HOOK_LATENCY_BUCKETS, STAGE_SECONDS_BUCKETS, Histogram,
                      MetricsRegistry)
from .profiler import DEFAULT_SAMPLE_INTERVAL, Profiler
from .spans import Tracer, spans_to_chrome_trace, spans_to_jsonl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (interp ← obs)
    from ..interp.limits import ResourceUsage

#: Schema tag stamped into every metrics artifact (bump on breaking change).
METRICS_SCHEMA = "repro.telemetry/1"


class Event:
    """One structured occurrence: a hook fault, a quarantine, a campaign."""

    __slots__ = ("ts", "kind", "fields")

    def __init__(self, ts: float, kind: str, fields: dict):
        self.ts = ts
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> dict:
        return {"ts": self.ts, "kind": self.kind, **self.fields}

    def render(self) -> str:
        """One-line human-readable form (the stderr log format)."""
        details = " ".join(f"{key}={value}" for key, value in self.fields.items()
                           if value is not None)
        return f"[{self.kind}] {details}"


class Telemetry:
    """Shared sink for one run: registry + tracer + events + profiler.

    ``profile=True`` attaches the engine self-profiler (pre-decoded engine
    only). Raw interpreter totals live as plain ``n_*`` int fields — the
    hot loops increment them directly — and :meth:`snapshot` folds
    everything into the :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 profile: bool = False,
                 sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
                 process: str | None = None):
        self.clock = clock
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=clock, process=process)
        self.events: list[Event] = []
        self.profiler: Profiler | None = (
            Profiler(sample_interval=sample_interval) if profile else None)
        # raw interpreter totals, charged by the engines' hoisted-guard sites
        self.n_calls = 0          # every Wasm + host call (mirrors Meter)
        self.n_host_calls = 0     # subset of n_calls crossing into the host
        self.n_branches = 0       # taken br / br_if / br_table
        self.n_traps = 0          # traps escaping a top-level invocation
        self.n_mem_grow = 0       # executed memory.grow instructions
        self.n_replayed_host_calls = 0  # host calls served from a replay log
        self.mem_pages = 0        # last linear-memory size seen at a grow
        self._spans_folded = 0

    # -- recording ------------------------------------------------------------

    def span(self, name: str, **attrs):
        """A pipeline-stage span (context manager)."""
        return self.tracer.span(name, **attrs)

    def event(self, kind: str, **fields) -> Event:
        """Record one structured event, timestamped with the shared clock."""
        event = Event(self.clock(), kind, fields)
        self.events.append(event)
        return event

    def adopt_spans(self, entries: list[dict] | None,
                    default_process: str | None = None) -> int:
        """Fold remote span dicts (a ``repro.serve/1`` response's ``spans``)
        into this run's tracer; they export and fold like local spans."""
        return self.tracer.adopt(entries, default_process)

    def note_grow(self, pages_now: int) -> None:
        """Charge one executed ``memory.grow`` (called from the engines)."""
        self.n_mem_grow += 1
        self.mem_pages = pages_now

    def hook_histogram(self, hook_name: str) -> Histogram:
        """Latency histogram for one monomorphized low-level hook.

        The runtime resolves this once per hook at wrap time and holds the
        reference, so per-dispatch cost is two clock reads and one observe.
        """
        return self.registry.histogram(
            "repro_hook_latency_seconds", labels={"hook": hook_name},
            buckets=HOOK_LATENCY_BUCKETS,
            help="dispatch latency per monomorphized low-level hook")

    def wasi_syscall_histogram(self, syscall: str) -> Histogram:
        """Host-boundary latency histogram for one WASI syscall.

        Resolved once per syscall by the WASI context and cached there,
        mirroring :meth:`hook_histogram`'s per-dispatch cost discipline.
        """
        return self.registry.histogram(
            "repro_wasi_syscall_seconds", labels={"syscall": syscall},
            buckets=HOOK_LATENCY_BUCKETS,
            help="time spent at the host boundary per WASI syscall")

    # -- folding & artifacts ---------------------------------------------------

    def snapshot(self, usage: "ResourceUsage | None" = None) -> MetricsRegistry:
        """Fold raw totals, spans, profile, and usage into the registry.

        Idempotent: counters are *set* from the cumulative raw fields and
        spans are folded exactly once each, so calling ``snapshot`` twice
        (e.g. once per exporter) cannot double-count.
        """
        registry = self.registry
        interp = [
            ("repro_calls_total", self.n_calls, "function calls (wasm + host)"),
            ("repro_host_calls_total", self.n_host_calls,
             "calls crossing into the host"),
            ("repro_branches_total", self.n_branches, "taken branches"),
            ("repro_traps_total", self.n_traps,
             "traps escaping a top-level invocation"),
            ("repro_memory_grow_total", self.n_mem_grow,
             "executed memory.grow instructions"),
            ("repro_replayed_host_calls_total", self.n_replayed_host_calls,
             "host calls served from a replay log instead of the host"),
        ]
        for name, value, help_text in interp:
            registry.counter(name, help=help_text).set(value)
        registry.gauge("repro_memory_pages",
                       help="linear memory size at the last grow").set(
            self.mem_pages)
        registry.counter("repro_events_total",
                         help="structured telemetry events").set(
            len(self.events))
        spans = self.tracer.spans
        for span in spans[self._spans_folded:]:
            registry.histogram("repro_stage_seconds",
                               labels={"stage": span.name},
                               buckets=STAGE_SECONDS_BUCKETS,
                               help="pipeline stage duration").observe(
                span.duration)
        self._spans_folded = len(spans)
        profiler = self.profiler
        if profiler is not None:
            for cls, count in profiler.opcode_class_counts().items():
                registry.counter(
                    "repro_opcode_executions_total", labels={"class": cls},
                    help="executed instructions per opcode class").set(count)
            registry.counter(
                "repro_instructions_total",
                help="total executed instructions (profiled runs)").set(
                profiler.total_instructions)
        if usage is not None:
            usage.record_to(registry)
        return registry

    def metrics_payload(self, usage: "ResourceUsage | None" = None) -> dict:
        """The metrics artifact: registry + events + profile, JSON-ready."""
        payload = {
            "schema": METRICS_SCHEMA,
            "metrics": self.snapshot(usage).as_dict(),
            "events": [event.as_dict() for event in self.events],
        }
        if self.profiler is not None:
            payload["profile"] = self.profiler.as_dict()
        return payload

    def write_metrics(self, path: str | Path,
                      usage: "ResourceUsage | None" = None) -> Path:
        """Write the metrics artifact; ``.prom`` selects text exposition."""
        path = Path(path)
        if path.suffix == ".prom":
            path.write_text(self.snapshot(usage).to_prometheus())
        else:
            path.write_text(json.dumps(self.metrics_payload(usage), indent=2)
                            + "\n")
        return path

    def write_trace(self, path: str | Path) -> Path:
        """Write the span trace; ``.jsonl`` selects span-per-line JSONL,
        anything else the Chrome trace-event format (Perfetto-loadable)."""
        path = Path(path)
        if path.suffix == ".jsonl":
            path.write_text(spans_to_jsonl(self.tracer.spans))
        else:
            path.write_text(json.dumps(spans_to_chrome_trace(self.tracer.spans))
                            + "\n")
        return path


class _NullSpan:
    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def maybe_span(telemetry: Telemetry | None, name: str, **attrs):
    """``telemetry.span(...)`` or a no-op context when telemetry is off."""
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.span(name, **attrs)


# -- `repro report`: render a metrics artifact for humans ---------------------


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}µs"


def render_report(payload: dict, top: int = 10) -> str:
    """Human-readable summary of a metrics artifact (``repro report``)."""
    if payload.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"not a repro metrics artifact (schema {payload.get('schema')!r}, "
            f"expected {METRICS_SCHEMA!r})")
    registry = MetricsRegistry.from_dict(payload.get("metrics", {}))
    lines: list[str] = ["== telemetry report =="]

    counters = [m for m in registry if m.kind == "counter" and m.value]
    if counters:
        lines.append("")
        lines.append("counters:")
        for metric in counters:
            label = "".join(f"{{{k}={v}}}" for k, v in metric.labels)
            lines.append(f"  {metric.name + label:<40} {metric.value}")
    gauges = [m for m in registry if m.kind == "gauge" and m.value]
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for metric in gauges:
            lines.append(f"  {metric.name:<32} {metric.value}")

    stages = registry.series("repro_stage_seconds")
    if any(h.count for h in stages):
        lines.append("")
        lines.append("pipeline stages:")
        lines.append(f"  {'stage':<14} {'count':>5} {'total':>10} {'mean':>10}")
        for hist in stages:
            if not hist.count:
                continue
            stage = dict(hist.labels).get("stage", "?")
            lines.append(f"  {stage:<14} {hist.count:>5} "
                         f"{_fmt_seconds(hist.sum):>10} "
                         f"{_fmt_seconds(hist.mean):>10}")

    syscalls = [h for h in registry.series("repro_wasi_syscall_seconds")
                if h.count]
    if syscalls:
        syscalls.sort(key=lambda h: -h.sum)
        lines.append("")
        lines.append("WASI syscalls (by total host-boundary time):")
        lines.append(f"  {'syscall':<20} {'count':>8} {'total':>10} "
                     f"{'mean':>10}")
        for hist in syscalls:
            syscall = dict(hist.labels).get("syscall", "?")
            lines.append(f"  {syscall:<20} {hist.count:>8} "
                         f"{_fmt_seconds(hist.sum):>10} "
                         f"{_fmt_seconds(hist.mean):>10}")

    hooks = [h for h in registry.series("repro_hook_latency_seconds") if h.count]
    if hooks:
        hooks.sort(key=lambda h: -h.sum)
        lines.append("")
        lines.append(f"hook dispatch latency (top {top} by total time):")
        lines.append(f"  {'hook':<28} {'count':>8} {'mean':>10} "
                     f"{'p50':>10} {'p95':>10}")
        for hist in hooks[:top]:
            hook = dict(hist.labels).get("hook", "?")
            lines.append(f"  {hook:<28} {hist.count:>8} "
                         f"{_fmt_seconds(hist.mean):>10} "
                         f"{_fmt_seconds(hist.quantile(0.5)):>10} "
                         f"{_fmt_seconds(hist.quantile(0.95)):>10}")

    profile = payload.get("profile")
    if profile:
        total = profile.get("total_instructions", 0) or 1
        lines.append("")
        lines.append(f"hot functions (self instructions, of {total} total):")
        functions = list(profile.get("functions", {}).items())[:top]
        for name, count in functions:
            lines.append(f"  {name:<28} {count:>12}  {count / total:>6.1%}")
        lines.append("")
        lines.append("hot opcodes:")
        opcodes = sorted(profile.get("opcodes", {}).items(),
                         key=lambda kv: -kv[1])[:top]
        for name, count in opcodes:
            lines.append(f"  {name:<28} {count:>12}  {count / total:>6.1%}")
        pairs = profile.get("pairs")
        if pairs:
            # what a profile-guided fusion table would merge: the hottest
            # back-to-back pairs of the recorded (unfused) stream, marked
            # by whether an implementable superinstruction exists
            from ..interp.pgo import PROFILE_SCHEMA, unfused_hot_pairs
            rows = unfused_hot_pairs(
                {"schema": PROFILE_SCHEMA,
                 "total_pairs": sum(count for _, _, count in pairs),
                 "pairs": pairs}, top=top)
            lines.append("")
            lines.append("top unfused hot pairs (see `repro pgo`):")
            for first, second, count, share, fusable in rows:
                tag = "fusable" if fusable else "no rule"
                lines.append(f"  {first + ' ; ' + second:<28} {count:>12}  "
                             f"{share:>6.1%}  {tag}")
        samples = profile.get("samples", {})
        if samples:
            lines.append("")
            lines.append(f"stack samples: {sum(samples.values())} "
                         f"({len(samples)} distinct stacks; "
                         f"collapsed-stack format in the artifact)")

    events = payload.get("events", ())
    if events:
        lines.append("")
        lines.append(f"events ({len(events)}):")
        for event in events[:top]:
            fields = {k: v for k, v in event.items() if k not in ("ts", "kind")}
            detail = " ".join(f"{k}={v}" for k, v in fields.items()
                              if v is not None)
            lines.append(f"  [{event.get('kind')}] {detail}")
        if len(events) > top:
            lines.append(f"  ... and {len(events) - top} more")
    return "\n".join(lines)
