"""The Wasabi runtime: generated low-level hooks dispatching to the analysis.

For every :class:`HookSpec` the instrumenter generated, the runtime creates
a host function (the analogue of the paper's generated JavaScript low-level
hooks). These functions

* re-join split i64 halves into full-width integers (§2.4.6),
* convert raw i32 condition values to booleans (Figure 5),
* attach pre-computed static information — resolved branch targets, memory
  offsets, variable indices, call targets (§2.3 "pre-computed information"),
* resolve indirect-call table indices to the actually called function by
  reading the live table (§2.3), and
* for ``br_table``, select the taken entry and fire the end hooks of all
  traversed blocks at runtime (§2.4.5),

before invoking the user's high-level hooks.

Two dispatch strategies coexist:

* the **generic dispatcher** (:meth:`WasabiRuntime._make_dispatcher`) parses
  the trailing location parameters and looks up per-site static information
  in dictionaries on *every* event — this is the only possible strategy on
  engines that call hook imports like any other host function, and it is
  kept as the differential-testing oracle;
* the **site factory** (:meth:`WasabiRuntime._site_factory`) is handed to
  the pre-decoding engine via the ``site_factory`` host-function attribute.
  The engine calls it once per fused ``const/const/call`` site, and the
  returned closure has the :class:`Location`, static info (branch targets,
  memarg offsets, variable indices, call targets, begin/end matching), and
  value converters all pre-bound, so per event nothing is looked up.

Hooks whose high-level methods the analysis does not override dispatch to a
shared no-op in both strategies.

**Fault containment.** Every dispatcher (generic and specialized) runs the
analysis under a containment wrapper: an exception escaping a hook is
wrapped in :class:`~repro.wasm.errors.AnalysisError` carrying the hook name
and :class:`Location`, and then handled per the runtime's
``on_analysis_error`` policy — ``raise`` (propagate to the embedder),
``abort`` (trap the guest with :class:`~repro.wasm.errors.AnalysisAbort`),
``quarantine`` (atomically swap that hook's dispatchers — specialized
``OP_HOOK`` sites included, via the host functions' site registries — for
the shared no-op and keep the guest running), or ``log`` (record, report on
stderr, keep dispatching).
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Callable

from ..interp.host import HostFunction
from ..interp.machine import Instance
from ..wasm.errors import AnalysisAbort, AnalysisError
from ..wasm.numeric import to_signed
from ..wasm.types import I64, ValType
from .analysis import Analysis, Location, MemArg
from .hooks import HookSpec, split_i64
from .instrument import InstrumentationResult
from .metadata import StaticInfo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs → interp)
    from ..obs.telemetry import Telemetry

#: Valid ``on_analysis_error`` policies.
ERROR_POLICIES = ("raise", "abort", "quarantine", "log")


def _present(valtype: ValType, raw: int | float) -> int | float:
    """Convert a canonical runtime value to its analysis-facing form.

    Integers become signed Python ints (the JavaScript ``number`` /
    long.js view of the paper's Figure 5); floats pass through.
    """
    if valtype is ValType.I32:
        return to_signed(raw, 32)
    if valtype is ValType.I64:
        return to_signed(raw, 64)
    return raw


#: hook kind → analysis method(s) a dispatcher for that kind may invoke.
_KIND_TO_METHODS: dict[str, tuple[str, ...]] = {
    "const": ("const_",),
    "drop": ("drop",),
    "select": ("select",),
    "unary": ("unary",),
    "binary": ("binary",),
    "load": ("load",),
    "store": ("store",),
    "local": ("local",),
    "global": ("global_",),
    "memory_size": ("memory_size",),
    "memory_grow": ("memory_grow",),
    "call_pre": ("call_pre",),
    "call_post": ("call_post",),
    "return": ("return_",),
    "br": ("br",),
    "br_if": ("br_if",),
    # the br_table dispatcher also fires the end hooks of traversed blocks
    "br_table": ("br_table", "end"),
    "if": ("if_",),
    "begin": ("begin",),
    "end": ("end",),
    "nop": ("nop",),
    "unreachable": ("unreachable",),
}


def _overrides(analysis: Analysis, method_name: str) -> bool:
    """Whether ``analysis`` overrides a hook method of :class:`Analysis`.

    Instance attributes (as installed by ``CompositeAnalysis``) count as
    overrides just like subclass methods.
    """
    impl = getattr(analysis, method_name)
    return getattr(impl, "__func__", impl) is not getattr(Analysis, method_name)


_SIGN32 = 1 << 31
_SIGN64 = 1 << 63


def _part_extractors(value_types: tuple[ValType, ...]):
    """Per logical hook value: ``(raw, presented)`` extractor pairs.

    Each extractor takes the flat (post-i64-split) raw argument list and
    returns one logical value; ``raw`` keeps the engine's canonical unsigned
    form (used for addresses and table indices), ``presented`` applies the
    Figure-5 conversion of :func:`_present`. Split i64 halves are re-joined
    by both. Index arithmetic happens here, once, at specialization time.
    """
    raws: list = []
    presented: list = []
    cursor = 0
    for valtype in value_types:
        if valtype is I64:
            lo, hi = cursor, cursor + 1
            raws.append(lambda a, lo=lo, hi=hi: a[lo] | (a[hi] << 32))
            # branch-free sign conversion: (x ^ 2**63) - 2**63
            presented.append(
                lambda a, lo=lo, hi=hi:
                ((a[lo] | (a[hi] << 32)) ^ _SIGN64) - _SIGN64)
            cursor += 2
        else:
            i = cursor
            raws.append(lambda a, i=i: a[i])
            if valtype is ValType.I32:
                presented.append(lambda a, i=i: (a[i] ^ _SIGN32) - _SIGN32)
            else:
                presented.append(lambda a, i=i: a[i])
            cursor += 1
    return raws, presented


def _noop_dispatcher(args: list) -> None:
    """Shared dispatcher for hooks whose analysis methods are not overridden."""


class WasabiRuntime:
    """Builds and owns the low-level hook host functions for one analysis."""

    def __init__(self, result: InstrumentationResult, analysis: Analysis,
                 on_analysis_error: str = "raise",
                 telemetry: "Telemetry | None" = None,
                 replay=None):
        if on_analysis_error not in ERROR_POLICIES:
            raise ValueError(
                f"on_analysis_error must be one of {ERROR_POLICIES}, "
                f"got {on_analysis_error!r}")
        self.info: StaticInfo = result.info
        self.analysis = analysis
        self.on_analysis_error = on_analysis_error
        self.telemetry = telemetry
        #: Recorder/Replayer for hook-fault and quarantine events. Hook
        #: *calls* are never recorded (they re-execute live during replay);
        #: their faults and the containment verdicts are, so a replayed run
        #: must fault at the same locations with the same policy outcomes.
        self.replay = replay
        self.instance: Instance | None = None
        #: AnalysisError records for every contained hook fault, in order.
        self.hook_faults: list[AnalysisError] = []
        self._quarantined: set[str] = set()
        self._hosts: dict[str, HostFunction] = {}
        self._num_original_imports = sum(
            1 for f in self.info.module_info.functions if f.imported)
        self._num_hooks = len(self.info.hooks)
        self._with_locations = True
        if self.info.hooks:
            # all hooks share the location convention
            first = self.info.hooks[0]
            self._with_locations = (len(first.wasm_params)
                                    == len(split_i64(first.value_types)) + 2)
        self.enabled = True  # allows pausing an analysis mid-run

    def bind(self, instance: Instance) -> None:
        """Attach the instrumented instance (needed for table lookups)."""
        self.instance = instance

    # -- host function generation ----------------------------------------------

    def host_functions(self) -> dict[str, HostFunction]:
        """One generated host function per low-level hook.

        Each host function is annotated for the pre-decoding engine:
        ``is_wasabi_hook`` marks it void-by-construction, and (when hooks
        carry location parameters) ``site_factory`` lets the engine request
        a per-call-site specialized dispatcher at instantiation time.
        """
        out: dict[str, HostFunction] = {}
        for spec in self.info.hooks:
            dispatcher = self._contain(
                self._timed(self._make_dispatcher(spec), spec.name), spec.name)
            host = HostFunction(spec.functype, dispatcher, name=spec.name)
            host.is_wasabi_hook = True
            # every OP_HOOK site bound from this host is recorded here by
            # bind_hook_sites, so quarantine() can swap them for the no-op
            host.site_registry = []
            if self._with_locations:
                host.site_factory = self._site_factory(spec)
            out[spec.name] = host
        self._hosts.update(out)
        return out

    def _hook_is_live(self, spec: HookSpec) -> bool:
        """Whether any analysis method this hook dispatches to is overridden."""
        return any(_overrides(self.analysis, method)
                   for method in _KIND_TO_METHODS[spec.kind])

    # -- telemetry ---------------------------------------------------------------

    def _timed(self, inner: Callable[[list], None],
               hook_name: str) -> Callable[[list], None]:
        """Wrap a dispatcher so each dispatch is timed into the telemetry's
        per-hook latency histogram.

        The histogram (and its ``.observe``) is resolved once per hook at
        wrap time, so the per-dispatch cost is two clock reads and one
        bisect. Without telemetry (or for the shared no-op of a dead hook)
        the dispatcher passes through untouched — the disabled path adds
        nothing. Containment wraps *outside* this, so a faulting dispatch
        still records its latency before the policy applies.
        """
        tele = self.telemetry
        if tele is None or inner is _noop_dispatcher:
            return inner
        observe = tele.hook_histogram(hook_name).observe
        clock = tele.clock

        def timed(args: list) -> None:
            start = clock()
            try:
                inner(args)
            finally:
                observe(clock() - start)

        return timed

    # -- fault containment ---------------------------------------------------

    def _contain(self, inner: Callable[[list], None], hook_name: str,
                 location: Location | None = None) -> Callable[[list], None]:
        """Wrap a dispatcher so hook exceptions are contained per policy.

        The shared no-op passes through unwrapped (it cannot raise), so
        dead hooks keep identity-comparable no-op dispatch. Exceptions that
        are already :class:`AnalysisError` (a nested contained dispatch, or
        an :class:`AnalysisAbort` trap in flight) propagate unwrapped.
        ``KeyboardInterrupt``/``SystemExit`` are never contained.
        """
        if inner is _noop_dispatcher:
            return inner

        def contained(args: list) -> None:
            try:
                inner(args)
            except AnalysisError:
                raise
            except Exception as exc:
                self._hook_fault(exc, hook_name, location, args)

        return contained

    def _hook_fault(self, exc: Exception, hook_name: str,
                    location: Location | None, args: list) -> None:
        """Record one contained hook fault and apply the error policy."""
        if location is None:
            # generic dispatchers have no statically bound Location; recover
            # it from the trailing location parameters when present
            if self._with_locations and len(args) >= 2:
                try:
                    location = Location(args[-2], to_signed(args[-1], 32))
                except (TypeError, IndexError):
                    location = None
        where = f" at {location}" if location is not None else ""
        message = (f"analysis hook {hook_name!r} raised "
                   f"{type(exc).__name__}: {exc}{where}")
        policy = self.on_analysis_error
        cls = AnalysisAbort if policy == "abort" else AnalysisError
        error = cls(message, hook_name=hook_name, location=location)
        error.__cause__ = exc
        self.hook_faults.append(error)
        tele = self.telemetry
        if tele is not None:
            tele.event("hook_fault", hook=hook_name,
                       func=location.func if location is not None else None,
                       instr=location.instr if location is not None else None,
                       exception=type(exc).__name__, policy=policy,
                       message=str(exc))
        replay = self.replay
        if replay is not None:
            # record (or verify, when replaying) before the policy applies,
            # so even a propagated fault is in the log
            replay.hook_fault(hook_name, exc, location, policy)
        if policy == "raise" or policy == "abort":
            raise error
        if policy == "quarantine":
            self.quarantine(hook_name)
        if tele is None:
            # without a telemetry event log, containment reports on stderr
            print(f"repro: contained {message}"
                  + (" (hook quarantined)" if policy == "quarantine" else ""),
                  file=sys.stderr)

    def quarantine(self, hook_name: str) -> None:
        """Atomically replace every dispatcher of one hook with the no-op.

        Swaps the host function's ``fn`` (the generic/legacy dispatch path)
        and every specialized ``OP_HOOK`` site recorded in its site
        registry. Each swap is a single reference assignment, so a swap is
        atomic under the GIL and takes effect immediately — the engines read
        dispatchers from the live instruction stream, so even sites reached
        later in the *current* invocation dispatch to the no-op.
        """
        self._quarantined.add(hook_name)
        if self.telemetry is not None:
            self.telemetry.event("hook_quarantined", hook=hook_name)
        if self.replay is not None:
            self.replay.quarantine(hook_name)
        host = self._hosts.get(hook_name)
        if host is None:
            return
        host.fn = _noop_dispatcher
        for code, pc in host.site_registry:
            ins = code[pc]
            code[pc] = (ins[0], _noop_dispatcher, ins[2], ins[3])

    def _split_args(self, spec: HookSpec,
                    raw: list[int | float]) -> tuple[Location, list[int | float]]:
        if self._with_locations:
            func_idx = raw[-2]
            instr_idx = to_signed(raw[-1], 32)
            raw = raw[:-2]
        else:
            func_idx, instr_idx = -1, -1
        location = Location(func_idx, instr_idx)
        values: list[int | float] = []
        cursor = 0
        for valtype in spec.value_types:
            if valtype is I64:
                low, high = raw[cursor], raw[cursor + 1]
                values.append(low | (high << 32))
                cursor += 2
            else:
                values.append(raw[cursor])
                cursor += 1
        return location, values

    def _original_func_idx(self, instrumented_idx: int) -> int:
        """Map a function index of the instrumented module back to the
        original index space (inverse of the instrumenter's remapping)."""
        if instrumented_idx < self._num_original_imports:
            return instrumented_idx
        return instrumented_idx - self._num_hooks

    def _make_dispatcher(self, spec: HookSpec) -> Callable[[list], None]:
        analysis = self.analysis
        kind = spec.kind
        payload = spec.payload
        info = self.info

        # A hook whose high-level methods the analysis never overrides can
        # only ever reach Analysis' empty default bodies: share one no-op.
        if not self._hook_is_live(spec):
            return _noop_dispatcher

        # Fast path: without i64 values there is no split-halves re-joining,
        # so the raw args *are* the values and the generic cursor walk in
        # _split_args can be skipped. Hooks fire once per executed
        # instruction, so this is the hottest code outside the interpreter.
        if any(t is I64 for t in spec.value_types):
            def loc_and_vals(args: list) -> tuple[Location, list]:
                return self._split_args(spec, args)
        elif self._with_locations:
            def loc_and_vals(args: list) -> tuple[Location, list]:
                return Location(args[-2], to_signed(args[-1], 32)), args[:-2]
        else:
            no_loc = Location(-1, -1)
            def loc_and_vals(args: list) -> tuple[Location, list]:
                return no_loc, args

        if kind == "const":
            valtype = payload[0]
            def dispatch(args: list) -> None:
                loc, (value,) = loc_and_vals(args)
                analysis.const_(loc, _present(valtype, value))
        elif kind == "drop":
            valtype = payload[0]
            def dispatch(args: list) -> None:
                loc, (value,) = loc_and_vals(args)
                analysis.drop(loc, _present(valtype, value))
        elif kind == "select":
            valtype = payload[0]
            def dispatch(args: list) -> None:
                loc, (first, second, condition) = loc_and_vals(args)
                analysis.select(loc, bool(condition),
                                _present(valtype, first),
                                _present(valtype, second))
        elif kind in ("unary", "binary"):
            op = payload[0]
            from ..wasm.opcodes import BY_NAME
            params, results = BY_NAME[op].signature
            if kind == "unary":
                def dispatch(args: list) -> None:
                    loc, (inp, res) = loc_and_vals(args)
                    analysis.unary(loc, op, _present(params[0], inp),
                                   _present(results[0], res))
            else:
                def dispatch(args: list) -> None:
                    loc, (first, second, res) = loc_and_vals(args)
                    analysis.binary(loc, op, _present(params[0], first),
                                    _present(params[1], second),
                                    _present(results[0], res))
        elif kind == "load":
            op = payload[0]
            from ..wasm.opcodes import BY_NAME
            valtype = BY_NAME[op].signature[1][0]
            def dispatch(args: list) -> None:
                loc, (addr, value) = loc_and_vals(args)
                offset = info.memarg_offsets.get((loc.func, loc.instr), 0)
                analysis.load(loc, op, MemArg(addr, offset),
                              _present(valtype, value))
        elif kind == "store":
            op = payload[0]
            from ..wasm.opcodes import BY_NAME
            valtype = BY_NAME[op].signature[0][1]
            def dispatch(args: list) -> None:
                loc, (addr, value) = loc_and_vals(args)
                offset = info.memarg_offsets.get((loc.func, loc.instr), 0)
                analysis.store(loc, op, MemArg(addr, offset),
                               _present(valtype, value))
        elif kind == "local":
            op, valtype = payload
            def dispatch(args: list) -> None:
                loc, (value,) = loc_and_vals(args)
                index = info.var_indices[(loc.func, loc.instr)]
                analysis.local(loc, op, index, _present(valtype, value))
        elif kind == "global":
            op, valtype = payload
            def dispatch(args: list) -> None:
                loc, (value,) = loc_and_vals(args)
                index = info.var_indices[(loc.func, loc.instr)]
                analysis.global_(loc, op, index, _present(valtype, value))
        elif kind == "memory_size":
            def dispatch(args: list) -> None:
                loc, (size,) = loc_and_vals(args)
                analysis.memory_size(loc, size)
        elif kind == "memory_grow":
            def dispatch(args: list) -> None:
                loc, (delta, previous) = loc_and_vals(args)
                analysis.memory_grow(loc, delta, previous)
        elif kind == "call_pre":
            indirect = payload[0] == "indirect"
            param_types = payload[1:]
            if indirect:
                def dispatch(args: list) -> None:
                    loc, values = loc_and_vals(args)
                    table_index = values[0]
                    call_args = [_present(t, v)
                                 for t, v in zip(param_types, values[1:])]
                    target = -1
                    if self.instance is not None and self.instance.table is not None:
                        entry = self.instance.table.lookup(table_index)
                        if entry is not None:
                            target = self._original_func_idx(entry)
                    analysis.call_pre(loc, target, call_args, table_index)
            else:
                def dispatch(args: list) -> None:
                    loc, values = loc_and_vals(args)
                    call_args = [_present(t, v)
                                 for t, v in zip(param_types, values)]
                    target = info.call_targets[(loc.func, loc.instr)]
                    analysis.call_pre(loc, target, call_args, None)
        elif kind == "call_post":
            result_types = payload
            def dispatch(args: list) -> None:
                loc, values = loc_and_vals(args)
                analysis.call_post(
                    loc, [_present(t, v) for t, v in zip(result_types, values)])
        elif kind == "return":
            result_types = payload
            def dispatch(args: list) -> None:
                loc, values = loc_and_vals(args)
                analysis.return_(
                    loc, [_present(t, v) for t, v in zip(result_types, values)])
        elif kind == "br":
            def dispatch(args: list) -> None:
                loc, _ = loc_and_vals(args)
                analysis.br(loc, info.br_targets[(loc.func, loc.instr)])
        elif kind == "br_if":
            def dispatch(args: list) -> None:
                loc, (condition,) = loc_and_vals(args)
                analysis.br_if(loc, info.br_targets[(loc.func, loc.instr)],
                               bool(condition))
        elif kind == "br_table":
            def dispatch(args: list) -> None:
                loc, (table_index,) = loc_and_vals(args)
                table_info = info.br_tables[(loc.func, loc.instr)]
                analysis.br_table(loc, table_info.targets, table_info.default,
                                  table_index)
                _, ended = table_info.select(table_index)
                for event in ended:
                    analysis.end(event.end, event.kind, event.begin)
        elif kind == "if":
            def dispatch(args: list) -> None:
                loc, (condition,) = loc_and_vals(args)
                analysis.if_(loc, bool(condition))
        elif kind == "begin":
            block_type = payload[0]
            def dispatch(args: list) -> None:
                loc, _ = loc_and_vals(args)
                analysis.begin(loc, block_type)
        elif kind == "end":
            block_type = payload[0]
            def dispatch(args: list) -> None:
                loc, _ = loc_and_vals(args)
                begin = info.begin_of_end[(loc.func, loc.instr, block_type)]
                analysis.end(loc, block_type, begin)
        elif kind == "nop":
            def dispatch(args: list) -> None:
                loc, _ = loc_and_vals(args)
                analysis.nop(loc)
        elif kind == "unreachable":
            def dispatch(args: list) -> None:
                loc, _ = loc_and_vals(args)
                analysis.unreachable(loc)
        else:  # pragma: no cover - registry only produces known kinds
            raise ValueError(f"unknown hook kind {kind!r}")

        return dispatch

    # -- per-call-site specialization ---------------------------------------------

    def _site_factory(self, spec: HookSpec) -> Callable[[int, int], Callable[[list], None]]:
        """Build the specialization factory the pre-decoding engine calls.

        The engine invokes the returned factory once per fused
        ``const/const/call`` hook site with the two raw location constants;
        the factory returns a dispatcher over the popped value arguments
        with everything constant at that site — the :class:`Location`,
        memarg offset, variable index, direct-call target, branch targets,
        br_table entries, begin/end matching, and the value converters —
        resolved here, never per event. A factory raising (a site with no
        static info) makes the engine fall back to the generic dispatcher,
        which fails or succeeds at event time exactly like the
        unspecialized engine.
        """
        analysis = self.analysis
        kind = spec.kind
        payload = spec.payload
        info = self.info

        if not self._hook_is_live(spec):
            def noop_factory(func_const: int, instr_const: int) -> Callable[[list], None]:
                return _noop_dispatcher
            return noop_factory

        raws, presented = _part_extractors(spec.value_types)
        # the hottest dispatchers (pure-i32 and pure-float shapes) are
        # flattened below to avoid even the per-value extractor calls
        all_i32 = all(t is ValType.I32 for t in spec.value_types)
        all_float = all(t not in (ValType.I32, I64) for t in spec.value_types)

        if kind in ("const", "drop"):
            hook = analysis.const_ if kind == "const" else analysis.drop
            if all_i32:
                def bind(loc: Location) -> Callable[[list], None]:
                    def dispatch(args: list) -> None:
                        hook(loc, (args[0] ^ _SIGN32) - _SIGN32)
                    return dispatch
            elif all_float:
                def bind(loc: Location) -> Callable[[list], None]:
                    def dispatch(args: list) -> None:
                        hook(loc, args[0])
                    return dispatch
            else:
                def bind(loc: Location) -> Callable[[list], None]:
                    def dispatch(args: list) -> None:
                        hook(loc, ((args[0] | (args[1] << 32)) ^ _SIGN64)
                             - _SIGN64)
                    return dispatch
        elif kind == "select":
            hook = analysis.select
            first, second, condition = presented[0], presented[1], raws[2]
            def bind(loc: Location) -> Callable[[list], None]:
                def dispatch(args: list) -> None:
                    hook(loc, bool(condition(args)), first(args), second(args))
                return dispatch
        elif kind == "unary":
            hook = analysis.unary
            op = payload[0]
            if all_i32:
                def bind(loc: Location) -> Callable[[list], None]:
                    def dispatch(args: list) -> None:
                        hook(loc, op, (args[0] ^ _SIGN32) - _SIGN32,
                             (args[1] ^ _SIGN32) - _SIGN32)
                    return dispatch
            elif all_float:
                def bind(loc: Location) -> Callable[[list], None]:
                    def dispatch(args: list) -> None:
                        hook(loc, op, args[0], args[1])
                    return dispatch
            else:
                inp, res = presented[0], presented[1]
                def bind(loc: Location) -> Callable[[list], None]:
                    def dispatch(args: list) -> None:
                        hook(loc, op, inp(args), res(args))
                    return dispatch
        elif kind == "binary":
            hook = analysis.binary
            op = payload[0]
            if all_i32:
                def bind(loc: Location) -> Callable[[list], None]:
                    def dispatch(args: list) -> None:
                        hook(loc, op, (args[0] ^ _SIGN32) - _SIGN32,
                             (args[1] ^ _SIGN32) - _SIGN32,
                             (args[2] ^ _SIGN32) - _SIGN32)
                    return dispatch
            elif all_float:
                def bind(loc: Location) -> Callable[[list], None]:
                    def dispatch(args: list) -> None:
                        hook(loc, op, args[0], args[1], args[2])
                    return dispatch
            else:
                first, second, res = presented[0], presented[1], presented[2]
                def bind(loc: Location) -> Callable[[list], None]:
                    def dispatch(args: list) -> None:
                        hook(loc, op, first(args), second(args), res(args))
                    return dispatch
        elif kind in ("load", "store"):
            hook = analysis.load if kind == "load" else analysis.store
            op = payload[0]
            valtype = spec.value_types[1]  # (address, value)
            if valtype is ValType.I32:
                def bind(loc: Location) -> Callable[[list], None]:
                    offset = info.memarg_offset(loc.func, loc.instr)
                    def dispatch(args: list) -> None:
                        hook(loc, op, MemArg(args[0], offset),
                             (args[1] ^ _SIGN32) - _SIGN32)
                    return dispatch
            elif valtype is I64:
                def bind(loc: Location) -> Callable[[list], None]:
                    offset = info.memarg_offset(loc.func, loc.instr)
                    def dispatch(args: list) -> None:
                        hook(loc, op, MemArg(args[0], offset),
                             ((args[1] | (args[2] << 32)) ^ _SIGN64) - _SIGN64)
                    return dispatch
            else:
                def bind(loc: Location) -> Callable[[list], None]:
                    offset = info.memarg_offset(loc.func, loc.instr)
                    def dispatch(args: list) -> None:
                        hook(loc, op, MemArg(args[0], offset), args[1])
                    return dispatch
        elif kind in ("local", "global"):
            hook = analysis.local if kind == "local" else analysis.global_
            op = payload[0]
            if all_i32:
                def bind(loc: Location) -> Callable[[list], None]:
                    index = info.var_index(loc.func, loc.instr)
                    def dispatch(args: list) -> None:
                        hook(loc, op, index, (args[0] ^ _SIGN32) - _SIGN32)
                    return dispatch
            elif all_float:
                def bind(loc: Location) -> Callable[[list], None]:
                    index = info.var_index(loc.func, loc.instr)
                    def dispatch(args: list) -> None:
                        hook(loc, op, index, args[0])
                    return dispatch
            else:
                def bind(loc: Location) -> Callable[[list], None]:
                    index = info.var_index(loc.func, loc.instr)
                    def dispatch(args: list) -> None:
                        hook(loc, op, index,
                             ((args[0] | (args[1] << 32)) ^ _SIGN64)
                             - _SIGN64)
                    return dispatch
        elif kind == "memory_size":
            hook = analysis.memory_size
            def bind(loc: Location) -> Callable[[list], None]:
                def dispatch(args: list) -> None:
                    hook(loc, args[0])
                return dispatch
        elif kind == "memory_grow":
            hook = analysis.memory_grow
            def bind(loc: Location) -> Callable[[list], None]:
                def dispatch(args: list) -> None:
                    hook(loc, args[0], args[1])
                return dispatch
        elif kind == "call_pre":
            hook = analysis.call_pre
            if payload[0] == "indirect":
                arg_parts = presented[1:]  # raws[0] is the raw table index
                def bind(loc: Location) -> Callable[[list], None]:
                    def dispatch(args: list) -> None:
                        table_index = args[0]
                        call_args = [part(args) for part in arg_parts]
                        target = -1
                        instance = self.instance
                        if instance is not None and instance.table is not None:
                            entry = instance.table.lookup(table_index)
                            if entry is not None:
                                target = self._original_func_idx(entry)
                        hook(loc, target, call_args, table_index)
                    return dispatch
            else:
                arg_parts = presented
                def bind(loc: Location) -> Callable[[list], None]:
                    target = info.call_target(loc.func, loc.instr)
                    def dispatch(args: list) -> None:
                        hook(loc, target, [part(args) for part in arg_parts], None)
                    return dispatch
        elif kind in ("call_post", "return"):
            hook = analysis.call_post if kind == "call_post" else analysis.return_
            parts = presented
            def bind(loc: Location) -> Callable[[list], None]:
                def dispatch(args: list) -> None:
                    hook(loc, [part(args) for part in parts])
                return dispatch
        elif kind == "br":
            hook = analysis.br
            def bind(loc: Location) -> Callable[[list], None]:
                target = info.br_target(loc.func, loc.instr)
                def dispatch(args: list) -> None:
                    hook(loc, target)
                return dispatch
        elif kind == "br_if":
            hook = analysis.br_if
            def bind(loc: Location) -> Callable[[list], None]:
                target = info.br_target(loc.func, loc.instr)
                def dispatch(args: list) -> None:
                    hook(loc, target, bool(args[0]))
                return dispatch
        elif kind == "br_table":
            br_hook = analysis.br_table if _overrides(analysis, "br_table") else None
            end_hook = analysis.end if _overrides(analysis, "end") else None
            def bind(loc: Location) -> Callable[[list], None]:
                table_info = info.br_table_info(loc.func, loc.instr)
                targets, default = table_info.targets, table_info.default
                ended, n_entries = table_info.ended, len(table_info.targets)
                def dispatch(args: list) -> None:
                    table_index = args[0]
                    if br_hook is not None:
                        br_hook(loc, targets, default, table_index)
                    if end_hook is not None:
                        taken = table_index if table_index < n_entries else -1
                        for event in ended[taken]:
                            end_hook(event.end, event.kind, event.begin)
                return dispatch
        elif kind == "if":
            hook = analysis.if_
            def bind(loc: Location) -> Callable[[list], None]:
                def dispatch(args: list) -> None:
                    hook(loc, bool(args[0]))
                return dispatch
        elif kind == "begin":
            hook = analysis.begin
            block_type = payload[0]
            def bind(loc: Location) -> Callable[[list], None]:
                def dispatch(args: list) -> None:
                    hook(loc, block_type)
                return dispatch
        elif kind == "end":
            hook = analysis.end
            block_type = payload[0]
            def bind(loc: Location) -> Callable[[list], None]:
                begin = info.begin_location(loc.func, loc.instr, block_type)
                def dispatch(args: list) -> None:
                    hook(loc, block_type, begin)
                return dispatch
        elif kind in ("nop", "unreachable"):
            hook = analysis.nop if kind == "nop" else analysis.unreachable
            def bind(loc: Location) -> Callable[[list], None]:
                def dispatch(args: list) -> None:
                    hook(loc)
                return dispatch
        else:  # pragma: no cover - registry only produces known kinds
            raise ValueError(f"unknown hook kind {kind!r}")

        hook_name = spec.name

        def factory(func_const: int, instr_const: int) -> Callable[[list], None]:
            # the begin-function hook's instr index is emitted as -1 and
            # arrives pre-masked; the func index is always nonnegative
            if hook_name in self._quarantined:
                return _noop_dispatcher
            location = Location(func_const, to_signed(instr_const, 32))
            return self._contain(self._timed(bind(location), hook_name),
                                 hook_name, location)
        return factory
