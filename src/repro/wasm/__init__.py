"""A self-contained WebAssembly (MVP) toolkit.

Provides the substrate the Wasabi reproduction is built on: module
representation, binary encoding/decoding, validation, and programmatic
construction. Execution lives in :mod:`repro.interp`.
"""

from .builder import FunctionBuilder, ModuleBuilder
from .decoder import decode_module
from .encoder import encode_module
from .errors import (AnalysisAbort, AnalysisError, BreakerOpen,
                     DeadlineExceeded, DecodeError, EncodeError,
                     ExhaustionError, FuelExhausted, ReplayDivergence,
                     ResourceExhausted, ServiceError, ServiceUnavailable,
                     SnapshotError, Trap, ValidationError, WasmError,
                     WorkerKilled)
from .module import (BrTable, CustomSection, DataSegment, ElemSegment, Export,
                     Function, Global, Import, Instr, MemArg, Module)
from .text import format_body, format_function, format_instr, format_module
from .types import (F32, F64, I32, I64, PAGE_SIZE, FuncType, GlobalType,
                    Limits, MemoryType, TableType, ValType)
from .validation import ExprValidator, validate_function, validate_module
from .wat import WatError, parse_wat

__all__ = [
    "AnalysisAbort", "AnalysisError", "BrTable", "BreakerOpen",
    "CustomSection",
    "DataSegment", "DeadlineExceeded", "DecodeError", "ElemSegment",
    "EncodeError", "ExhaustionError", "Export", "ExprValidator", "F32", "F64",
    "FuelExhausted", "FuncType", "Function", "FunctionBuilder", "Global",
    "GlobalType", "I32", "I64", "Import", "Instr", "Limits", "MemArg",
    "MemoryType", "Module", "ModuleBuilder", "PAGE_SIZE", "ReplayDivergence",
    "ResourceExhausted", "ServiceError", "ServiceUnavailable",
    "SnapshotError", "TableType", "Trap", "ValType",
    "ValidationError", "WasmError", "WorkerKilled",
    "WatError", "decode_module", "encode_module", "format_body",
    "format_function", "format_instr", "format_module", "parse_wat",
    "validate_function", "validate_module",
]
