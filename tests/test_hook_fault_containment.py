"""Hook-fault containment: the on_analysis_error policies.

The central guarantee tested here is the quarantine differential: a hook
that raises on its Nth event must leave guest-visible results *identical*
to an un-instrumented run, on both engines and with specialized hook
dispatch disabled (``REPRO_SPECIALIZE_HOOKS=0`` equivalent).
"""

from __future__ import annotations

import pytest

from repro.core import Analysis, AnalysisSession
from repro.interp import Linker, Machine
from repro.minic import compile_source
from repro.wasm import AnalysisAbort, AnalysisError, Trap

#: (predecode, specialize_hooks) engine configurations.
CONFIGS = [(True, True), (True, False), (False, True)]


def _machine(predecode: bool, specialize: bool) -> Machine:
    return Machine(predecode=predecode, specialize_hooks=specialize)


@pytest.fixture
def work_module():
    """Enough structure that every hook group fires: loops, calls, memory."""
    return compile_source("""
        memory 1;
        func helper(x: i32) -> i32 {
            return x * 2 + 1;
        }
        export func work(n: i32) -> i32 {
            var i: i32 = 0;
            var acc: i32 = 0;
            while (i < n) {
                acc = acc + helper(i);
                mem_i32[i % 64] = acc;
                i = i + 1;
            }
            return acc + mem_i32[(n - 1) % 64];
        }
    """, "work")


class FlakyAnalysis(Analysis):
    """Counts events and raises on the Nth one."""

    def __init__(self, fail_at: int, exc: Exception | None = None):
        self.events = 0
        self.fail_at = fail_at
        self.exc = exc or RuntimeError("injected analysis fault")

    def binary(self, loc, op, a, b, r):
        self.events += 1
        if self.events == self.fail_at:
            raise self.exc


class BrokenOpAnalysis(Analysis):
    """Raises every time one specific binary op's hook fires.

    Quarantine is per monomorphized hook (e.g. ``binary_i32_mul``), so a
    hook that is broken for one op must be silenced for that op only.
    """

    def __init__(self, bad_op: str):
        self.counts: dict[str, int] = {}
        self.bad_op = bad_op

    def binary(self, loc, op, a, b, r):
        self.counts[op] = self.counts.get(op, 0) + 1
        if op == self.bad_op:
            raise RuntimeError("injected analysis fault")


class TestPolicies:
    def test_invalid_policy_rejected(self, work_module):
        with pytest.raises(ValueError, match="on_analysis_error"):
            AnalysisSession(work_module, Analysis(),
                            on_analysis_error="retry")

    def test_raise_policy_wraps_with_location(self, work_module):
        session = AnalysisSession(work_module, FlakyAnalysis(3),
                                  on_analysis_error="raise")
        with pytest.raises(AnalysisError) as excinfo:
            session.invoke("work", [10])
        err = excinfo.value
        assert isinstance(err.__cause__, RuntimeError)
        assert err.hook_name is not None
        assert err.location is not None and err.location.func >= 0
        assert not isinstance(err, Trap)  # raise is an embedder error
        assert len(session.hook_faults) == 1

    def test_abort_policy_traps_cleanly(self, work_module):
        session = AnalysisSession(work_module, FlakyAnalysis(3),
                                  on_analysis_error="abort")
        with pytest.raises(AnalysisAbort) as excinfo:
            session.invoke("work", [10])
        assert isinstance(excinfo.value, Trap)
        # trap-clean: the machine unwound fully and works again
        assert session.machine._depth == 0
        session.analysis.fail_at = -1  # disarm
        assert session.invoke("work", [3]) == session.invoke("work", [3])

    def test_log_policy_keeps_dispatching(self, work_module, capsys):
        analysis = FlakyAnalysis(2)
        session = AnalysisSession(work_module, analysis,
                                  on_analysis_error="log")
        result = session.invoke("work", [10])
        assert result  # completed despite the fault
        assert len(session.hook_faults) == 1
        assert session.resource_usage().hook_faults == 1
        # the hook was NOT quarantined: later events still dispatched
        assert analysis.events > 2
        assert "contained" in capsys.readouterr().err

    def test_quarantine_policy_stops_dispatch(self, work_module, capsys):
        analysis = BrokenOpAnalysis("i32.mul")
        session = AnalysisSession(work_module, analysis,
                                  on_analysis_error="quarantine")
        session.invoke("work", [50])
        # the first i32.mul event raised; its hook was quarantined, so the
        # count froze at the faulting event even though helper() ran 50x
        assert analysis.counts["i32.mul"] == 1
        assert analysis.counts["i32.add"] > 50  # other variants unaffected
        assert len(session.hook_faults) == 1
        assert "quarantined" in capsys.readouterr().err

    def test_faults_accumulate_under_log(self, work_module):
        class AlwaysBroken(Analysis):
            def binary(self, loc, op, a, b, r):
                raise ValueError("boom")

        session = AnalysisSession(work_module, AlwaysBroken(),
                                  on_analysis_error="log")
        session.invoke("work", [5])
        assert len(session.hook_faults) > 1
        first = session.hook_faults[0]
        assert first.hook_name is not None
        assert isinstance(first.__cause__, ValueError)


class TestQuarantineDifferential:
    """Guest results under quarantine == un-instrumented results."""

    @pytest.mark.parametrize("predecode,specialize", CONFIGS)
    @pytest.mark.parametrize("fail_at", [1, 7, 40])
    def test_results_identical_to_uninstrumented(self, work_module,
                                                 predecode, specialize,
                                                 fail_at):
        args_list = [[5], [13], [40]]
        baseline_machine = _machine(predecode, specialize)
        baseline = baseline_machine.instantiate(work_module, Linker())
        expected = [baseline.invoke("work", args) for args in args_list]
        expected_mem = bytes(baseline.memory.data[:512])

        session = AnalysisSession(
            work_module, FlakyAnalysis(fail_at),
            machine=_machine(predecode, specialize),
            on_analysis_error="quarantine")
        got = [session.invoke("work", args) for args in args_list]
        got_mem = bytes(session.instance.memory.data[:512])

        assert got == expected
        assert got_mem == expected_mem
        assert len(session.hook_faults) == 1

    @pytest.mark.parametrize("predecode,specialize", CONFIGS)
    def test_multi_hook_quarantine_is_per_hook(self, work_module,
                                               predecode, specialize):
        """Only the faulting hook is quarantined; others keep reporting."""

        class PartiallyBroken(BrokenOpAnalysis):
            def __init__(self):
                super().__init__("i32.mul")
                self.locals_seen = 0

            def local(self, loc, op, idx, value):
                self.locals_seen += 1

        analysis = PartiallyBroken()
        session = AnalysisSession(work_module, analysis,
                                  machine=_machine(predecode, specialize),
                                  on_analysis_error="quarantine")
        session.invoke("work", [20])
        assert analysis.counts["i32.mul"] == 1  # quarantined after 1 fault
        assert analysis.counts["i32.add"] > 20  # sibling hooks unaffected
        assert analysis.locals_seen > 20  # the local hook kept running

    @pytest.mark.parametrize("predecode,specialize", CONFIGS)
    def test_quarantine_persists_across_invokes(self, work_module,
                                                predecode, specialize):
        analysis = BrokenOpAnalysis("i32.mul")
        session = AnalysisSession(work_module, analysis,
                                  machine=_machine(predecode, specialize),
                                  on_analysis_error="quarantine")
        first = session.invoke("work", [10])
        second = session.invoke("work", [10])
        assert first == second
        # no new events for the quarantined hook, even on a fresh invoke
        assert analysis.counts["i32.mul"] == 1

    def test_quarantine_differential_under_fresh_sites(self, work_module):
        """Sites specialized *after* a quarantine bind straight to the no-op.

        A second instantiation of the same session's runtime (new machine,
        same host functions) must respect an earlier quarantine.
        """
        analysis = BrokenOpAnalysis("i32.mul")
        session = AnalysisSession(work_module, analysis,
                                  on_analysis_error="quarantine")
        session.invoke("work", [5])
        assert analysis.counts["i32.mul"] == 1
        # bind the same hosts into a brand-new instance
        from repro.core.hooks import HOOK_MODULE
        linker = Linker()
        for name, host in session.runtime._hosts.items():
            linker.define(HOOK_MODULE, name, host)
        machine = Machine()
        instance = machine.instantiate(session.result.module, linker,
                                       run_start=False)
        baseline = Machine().instantiate(work_module, Linker())
        assert (instance.invoke("work", [8])
                == baseline.invoke("work", [8]))
        assert analysis.counts["i32.mul"] == 1  # still quarantined
