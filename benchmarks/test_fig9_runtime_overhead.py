"""Figure 9: runtime overhead per instrumented hook group (RQ5).

Runs each workload uninstrumented and under each selective configuration
(plus 'all') with an empty analysis attached, reporting relative runtimes.
By default a representative PolyBench subset keeps the sweep to a few
minutes (REPRO_FULL=1 runs all 30 kernels, as the paper does).

Paper-shape expectations checked below: rare hooks ≈ 1.0x; call/return
moderate; const/local/binary expensive; 'all' the most expensive; numeric
PolyBench pays more for `binary`/`local` than the diverse real-world code.
"""

from __future__ import annotations

import statistics

from repro.eval import (FIGURE_GROUPS, POLYBENCH_FAST_SUBSET, baseline_runtime,
                        instrumented_runtime, overhead_sweep,
                        polybench_workloads, realworld_workloads, render_fig9)
from repro.workloads.polybench import kernel_names

from conftest import full_run


def _geomean_for(reports, config):
    values = [r.relative_runtime for r in reports if r.config == config]
    return statistics.geometric_mean(values)


def test_fig9(benchmark, write_report):
    if full_run():
        poly_names = kernel_names()
        repeats = 3
    else:
        poly_names = POLYBENCH_FAST_SUBSET
        repeats = 1
    configs = FIGURE_GROUPS

    poly_reports = []
    for workload in polybench_workloads(poly_names):
        poly_reports.extend(overhead_sweep(workload, configs, repeats=repeats))
    pdf_workload, engine_workload = realworld_workloads(rounds=6)
    pdf_reports = overhead_sweep(pdf_workload, configs, repeats=repeats)
    engine_reports = overhead_sweep(engine_workload, configs, repeats=repeats)

    series = {
        f"PolyBench ({len(poly_names)})": poly_reports,
        "PSPDFKit~": pdf_reports,
        "UnrealEngine~": engine_reports,
    }
    write_report("fig9_runtime_overhead",
                 render_fig9(series, configs + ["all"]))

    # paper-shape assertions (geomean over the PolyBench subset):
    # (1) hooks for instructions that rarely/never execute cost ~nothing
    for cheap in ["nop", "unreachable", "memory_size", "memory_grow"]:
        assert _geomean_for(poly_reports, cheap) < 1.3
    # (2) the expensive hooks of the paper are the expensive hooks here
    assert _geomean_for(poly_reports, "binary") > 1.5
    assert _geomean_for(poly_reports, "local") > 1.5
    assert _geomean_for(poly_reports, "const") > 1.2
    # (3) 'all' dominates every single group
    all_overhead = _geomean_for(poly_reports, "all")
    for config in configs:
        assert all_overhead >= _geomean_for(poly_reports, config) * 0.9
    assert all_overhead > 3.0
    # (4) numeric PolyBench pays more for `binary` than the diverse code
    assert _geomean_for(poly_reports, "binary") >= \
        _geomean_for(engine_reports, "binary") * 0.8

    # the pytest-benchmark number: 'all'-instrumented gemm iteration
    gemm = polybench_workloads(["gemm"])[0]
    base = baseline_runtime(gemm, repeats=1)

    def run_all():
        return instrumented_runtime(gemm, "all", repeats=1)

    instrumented = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert instrumented > base
