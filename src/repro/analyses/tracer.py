"""Structured execution tracing (extension).

Records the full event stream as structured records and can export it as
JSON lines for offline analysis — the "record" half of the record-replay
workflow the paper cites from Jalangi. Useful for differential debugging
of engines and for building offline analyses without re-running the
program.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from ..core.analysis import Analysis, Location


@dataclass(frozen=True)
class Event:
    """One recorded hook event."""

    kind: str
    location: Location
    payload: tuple = ()

    def to_json(self) -> str:
        return json.dumps({"kind": self.kind, "func": self.location.func,
                           "instr": self.location.instr,
                           "payload": list(self.payload)})


class ExecutionTracer(Analysis):
    """Appends every event; optionally filtered by a predicate."""

    def __init__(self, keep: Callable[[Event], bool] | None = None,
                 max_events: int | None = None):
        self.events: list[Event] = []
        self.keep = keep
        self.max_events = max_events
        self.dropped = 0

    def _rec(self, kind: str, location: Location, *payload) -> None:
        event = Event(kind, location, payload)
        if self.keep is not None and not self.keep(event):
            return
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def const_(self, loc, v): self._rec("const", loc, v)
    def drop(self, loc, v): self._rec("drop", loc, v)
    def select(self, loc, c, a, b): self._rec("select", loc, c, a, b)
    def unary(self, loc, op, i, r): self._rec("unary", loc, op, i, r)
    def binary(self, loc, op, a, b, r): self._rec("binary", loc, op, a, b, r)
    def local(self, loc, op, i, v): self._rec("local", loc, op, i, v)
    def global_(self, loc, op, i, v): self._rec("global", loc, op, i, v)
    def load(self, loc, op, m, v): self._rec("load", loc, op, m.addr + m.offset, v)
    def store(self, loc, op, m, v): self._rec("store", loc, op, m.addr + m.offset, v)
    def memory_size(self, loc, s): self._rec("memory_size", loc, s)
    def memory_grow(self, loc, d, p): self._rec("memory_grow", loc, d, p)
    def call_pre(self, loc, f, args, t): self._rec("call_pre", loc, f, tuple(args), t)
    def call_post(self, loc, r): self._rec("call_post", loc, tuple(r))
    def return_(self, loc, r): self._rec("return", loc, tuple(r))
    def br(self, loc, t): self._rec("br", loc, t.location.instr)
    def br_if(self, loc, t, c): self._rec("br_if", loc, t.location.instr, c)
    def br_table(self, loc, tbl, d, i): self._rec("br_table", loc, i)
    def if_(self, loc, c): self._rec("if", loc, c)
    def begin(self, loc, k): self._rec("begin", loc, k)
    def end(self, loc, k, b): self._rec("end", loc, k, (b.func, b.instr))
    def nop(self, loc): self._rec("nop", loc)
    def unreachable(self, loc): self._rec("unreachable", loc)

    # -- export / query -----------------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(event.to_json() for event in self.events)

    def slice_by_function(self, func_idx: int) -> list[Event]:
        return [e for e in self.events if e.location.func == func_idx]

    def kinds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out
