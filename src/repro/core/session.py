"""One-call convenience for instrumenting and running a module under an analysis.

Mirrors the end-to-end flow of the paper's Figure 2: instrument the binary,
generate the low-level hooks, link everything, and execute — with selective
instrumentation derived automatically from which hooks the analysis
overrides.
"""

from __future__ import annotations

from typing import Sequence

from ..interp.host import Linker
from ..interp.machine import Instance, Machine
from ..wasm.module import Module
from .analysis import Analysis
from .hooks import HOOK_MODULE
from .instrument import (InstrumentationConfig, InstrumentationResult,
                         instrument_module)
from .runtime import WasabiRuntime


class AnalysisSession:
    """An instrumented module instance wired to an analysis."""

    def __init__(self, module: Module, analysis: Analysis,
                 linker: Linker | None = None,
                 groups: frozenset[str] | set[str] | None = None,
                 config: InstrumentationConfig | None = None,
                 machine: Machine | None = None,
                 run_start: bool = True):
        self.original = module
        self.analysis = analysis
        if groups is None:
            # selective instrumentation (§2.4.2): only instrument for the
            # hooks the analysis actually overrides
            groups = analysis.used_groups()
        self.groups: frozenset[str] = frozenset(groups)
        self.result: InstrumentationResult = instrument_module(
            module, groups=self.groups, config=config)
        self.runtime = WasabiRuntime(self.result, analysis)

        linker = linker or Linker()
        for name, host_func in self.runtime.host_functions().items():
            linker.define(HOOK_MODULE, name, host_func)

        self.machine = machine or Machine()
        # Instantiate without running start: the runtime must be bound (and
        # the high-level start hook fired) before any hook executes.
        self.instance: Instance = self.machine.instantiate(
            self.result.module, linker, run_start=False)
        self.runtime.bind(self.instance)
        if run_start and self.result.module.start is not None:
            analysis.start()
            self.machine.call(self.instance, self.result.module.start, [])

    @property
    def module_info(self):
        """Static module info exposed to analyses (``Wasabi.module.info``)."""
        return self.result.info.module_info

    def invoke(self, export_name: str,
               args: Sequence[int | float] = ()) -> list[int | float]:
        """Call an exported function of the instrumented instance."""
        return self.instance.invoke(export_name, args)


def analyze(module: Module, analysis: Analysis,
            linker: Linker | None = None,
            entry: str | None = None,
            args: Sequence[int | float] = (),
            **session_kwargs) -> AnalysisSession:
    """Instrument ``module`` for ``analysis``, optionally invoking ``entry``.

    Returns the session so callers can inspect the analysis state or invoke
    further exports.
    """
    session = AnalysisSession(module, analysis, linker=linker, **session_kwargs)
    if entry is not None:
        session.invoke(entry, args)
    return session
