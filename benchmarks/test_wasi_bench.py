"""WASI host-boundary costs: the disabled path must be (near-)free.

Two claims are pinned here:

1. **No-WASI modules pay only detection.** A module that does not import
   ``wasi_snapshot_preview1`` touches the WASI subsystem exactly once per
   run: the :func:`~repro.wasi.module_imports_wasi` scan that decides
   whether to build a host context at all. The interpreter loops are
   untouched. The scan is timed directly (timeit, best-of) and expressed
   as a fraction of the *fastest* Figure 9 kernel run — a deliberately
   pessimistic denominator. Floor: <= 2%.

2. **The armed fault plane is cheap at the boundary.** Running the
   ``wasi_io`` kernels with a seeded :class:`~repro.wasi.FaultPlane` at
   ``rate=0`` (every syscall consults the plane, nothing fires) stays
   within 1.5x of the unarmed run.

Results are recorded in ``benchmarks/results/BENCH_wasi.json``.
"""

from __future__ import annotations

import json
import statistics
import time
import timeit

from repro.eval import POLYBENCH_FAST_SUBSET, polybench_workloads
from repro.interp import Machine
from repro.interp.host import Linker
from repro.wasi import FaultPlane, WasiContext, module_imports_wasi
from repro.workloads.wasi_io import (SAMPLE_FILES, SAMPLE_STDIN,
                                     wasi_io_entry, wasi_io_module,
                                     wasi_io_names)

from conftest import full_run


def _detect_cost_seconds(modules) -> float:
    """Best-case per-call cost of the no-WASI detection scan."""
    n = 2_000 if full_run() else 500

    def scan():
        for module in modules:
            assert not module_imports_wasi(module)

    total = min(timeit.repeat(scan, number=n, repeat=5)) / n
    return total / len(modules)


def _time_plain_run(workload, repeats) -> float:
    best = float("inf")
    module = workload.module()
    for _ in range(repeats):
        machine = Machine()
        instance = machine.instantiate(module, workload.linker())
        start = time.perf_counter()
        instance.invoke(workload.entry, workload.args)
        best = min(best, time.perf_counter() - start)
    return best


def _time_wasi_run(name, repeats, faults=None):
    """Best-of invoke time for one wasi_io kernel; context is rebuilt per
    run (FS image and fault cursor are per-run state, as in production)."""
    module = wasi_io_module(name)
    entry, args = wasi_io_entry(name)
    best, syscalls = float("inf"), 0
    for _ in range(repeats):
        ctx = WasiContext(args=["bench"], stdin=SAMPLE_STDIN,
                          files=dict(SAMPLE_FILES), faults=faults)
        linker = Linker()
        ctx.register(linker)
        machine = Machine()
        instance = machine.instantiate(module, linker)
        ctx.bind_memory(instance)
        start = time.perf_counter()
        instance.invoke(entry, args)
        best = min(best, time.perf_counter() - start)
        syscalls = ctx.total_syscalls
    return best, syscalls


def test_wasi_overhead(benchmark, results_dir):
    repeats = 7 if full_run() else 5
    workloads = polybench_workloads(POLYBENCH_FAST_SUBSET)

    # (1) the disabled path: one detection scan per non-WASI run
    detect_s = _detect_cost_seconds([w.module() for w in workloads])
    plain = {w.name: _time_plain_run(w, 3) for w in workloads}
    fastest = min(plain.values())
    disabled_overhead = detect_s / fastest

    # (2) the syscall path, unarmed vs armed-but-silent fault plane
    silent = FaultPlane(seed=1, rate=0.0)
    rows = []
    for name in wasi_io_names():
        off_s, syscalls = _time_wasi_run(name, repeats)
        armed_s, _ = _time_wasi_run(name, repeats, faults=silent)
        rows.append({
            "name": name,
            "seconds": off_s,
            "armed_seconds": armed_s,
            "armed_overhead": armed_s / off_s,
            "syscalls": syscalls,
            "per_syscall_us": off_s / max(syscalls, 1) * 1e6,
        })

    payload = {
        "detect_ns": detect_s * 1e9,
        "fastest_plain_run_seconds": fastest,
        "disabled_overhead": disabled_overhead,
        "wasi_io": rows,
        "geomean_armed_overhead": statistics.geometric_mean(
            r["armed_overhead"] for r in rows),
    }
    path = results_dir / "BENCH_wasi.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for r in rows:
        print(f"{r['name']:12s} {r['seconds']*1e3:7.3f} ms "
              f"armed={r['armed_overhead']:.3f}x "
              f"{r['syscalls']:3d} syscalls "
              f"({r['per_syscall_us']:.1f} us/syscall)")
    print(f"detection {payload['detect_ns']:.0f} ns/run; "
          f"disabled path {disabled_overhead:.5%} of fastest kernel; "
          f"geomean armed {payload['geomean_armed_overhead']:.3f}x "
          f"[recorded in {path}]")

    # the ISSUE floor: modules without a WASI import pay <= 2%
    assert disabled_overhead <= 0.02, payload
    # the armed-but-silent fault plane stays cheap at the boundary
    assert payload["geomean_armed_overhead"] <= 1.5, payload

    # the pytest-benchmark number: one checksum run, faults armed
    benchmark.pedantic(lambda: _time_wasi_run("checksum", 1, faults=silent),
                       rounds=1, iterations=1)
