"""The 30 PolyBench/C kernels, ported to MiniC (paper §4.1).

Categories follow PolyBench 4.2: datamining (2), linear-algebra/blas (7),
linear-algebra/kernels (6), linear-algebra/solvers (6), medley (3),
stencils (6).
"""

from .common import KERNELS, Kernel, compile_kernel, get_kernel, kernel_names

__all__ = ["KERNELS", "Kernel", "compile_kernel", "get_kernel", "kernel_names"]
