"""Dynamic call graph extraction (paper Table 4, row 5).

Builds a call graph including indirect calls and calls between functions
that are neither imported nor exported — the basis for dead-code detection
or malware reverse engineering. Only needs the ``call_pre`` hook.
"""

from __future__ import annotations

from collections import Counter

import networkx as nx

from ..core.analysis import Analysis
from ..core.metadata import ModuleInfo


class CallGraphAnalysis(Analysis):
    """Records caller→callee edges with call counts and direct/indirect kind."""

    def __init__(self):
        self.edges: Counter[tuple[int, int, bool]] = Counter()

    def call_pre(self, location, func, args, table_index):
        self.edges[(location.func, func, table_index is not None)] += 1

    # reporting -----------------------------------------------------------------

    def graph(self, module_info: ModuleInfo | None = None) -> "nx.MultiDiGraph":
        """The dynamic call graph as a networkx multigraph.

        Nodes are function indices (annotated with names when
        ``module_info`` is given); parallel direct/indirect edges are kept
        apart, each carrying its call count.
        """
        graph = nx.MultiDiGraph()
        for (caller, callee, indirect), count in self.edges.items():
            graph.add_edge(caller, callee, indirect=indirect, count=count)
        if module_info is not None:
            for node in graph.nodes:
                if 0 <= node < len(module_info.functions):
                    graph.nodes[node]["name"] = module_info.func_name(node)
        return graph

    def reachable_from(self, root: int) -> set[int]:
        """Functions transitively called from ``root`` (dynamically observed)."""
        graph = self.graph()
        if root not in graph:
            return {root}
        return {root} | nx.descendants(graph, root)

    def dynamically_dead(self, module_info: ModuleInfo,
                         roots: list[int]) -> set[int]:
        """Defined functions never reached from any root in this execution."""
        live: set[int] = set()
        for root in roots:
            live |= self.reachable_from(root)
        return {f.idx for f in module_info.functions
                if not f.imported and f.idx not in live}

    def indirect_call_sites(self) -> set[tuple[int, int]]:
        return {(caller, callee) for (caller, callee, indirect) in self.edges
                if indirect}
