"""Corrupt and truncated crash bundles must fail with the exit taxonomy.

A bundle directory is just files on disk — hand edits, interrupted writes,
and copy mishaps all happen. ``repro bundle`` / ``repro replay`` (and the
`load_crash_bundle` API under them) must answer damaged input with a clean
taxonomy status and a diagnostic, never a ``json``/``OSError`` traceback.
"""

import json

import pytest

from repro.cli import EXIT_FAILURE, EXIT_MALFORMED, main
from repro.interp import load_crash_bundle
from repro.interp.replay import load_log
from repro.wasm import SnapshotError, WasmError


TRAP_WAT = """
(module
  (memory 1)
  (func (export "boom") (param i32) (result i32)
    local.get 0
    i32.load)
)
"""


@pytest.fixture
def trap_file(tmp_path):
    from repro.wasm import encode_module, parse_wat
    path = tmp_path / "trap.wasm"
    path.write_bytes(encode_module(parse_wat(TRAP_WAT)))
    return path


@pytest.fixture
def bundle(trap_file, tmp_path):
    """A healthy recorded bundle (module + manifest + snapshot + log)."""
    target = tmp_path / "bundle"
    assert main(["run", str(trap_file), "boom", "0",
                 "--record", str(target)]) == 0
    return target


class TestCorruptManifest:
    def test_truncated_manifest_raises_wasm_error(self, bundle):
        text = (bundle / "manifest.json").read_text()
        (bundle / "manifest.json").write_text(text[: len(text) // 2])
        with pytest.raises(WasmError, match="corrupt bundle manifest"):
            load_crash_bundle(bundle)

    def test_non_object_manifest_raises_wasm_error(self, bundle):
        (bundle / "manifest.json").write_text('["not", "a", "manifest"]\n')
        with pytest.raises(WasmError, match="not a JSON object"):
            load_crash_bundle(bundle)

    def test_bad_files_entry_raises_wasm_error(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        manifest["files"] = "module.wasm"
        (bundle / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(WasmError, match="'files' entry"):
            load_crash_bundle(bundle)

    def test_cli_bundle_exits_cleanly(self, bundle, capsys):
        (bundle / "manifest.json").write_text("{ truncated")
        assert main(["bundle", str(bundle)]) == EXIT_FAILURE
        assert "corrupt bundle manifest" in capsys.readouterr().err

    def test_cli_replay_exits_cleanly(self, bundle, capsys):
        (bundle / "manifest.json").write_text("{ truncated")
        assert main(["replay", str(bundle)]) == EXIT_FAILURE
        assert "corrupt bundle manifest" in capsys.readouterr().err


class TestMissingFiles:
    def test_missing_module_raises_wasm_error(self, bundle):
        (bundle / "module.wasm").unlink()
        with pytest.raises(WasmError, match="cannot be read"):
            load_crash_bundle(bundle)

    def test_missing_replay_log_raises_wasm_error(self, bundle):
        (bundle / "replay.jsonl").unlink()
        with pytest.raises(WasmError, match="cannot read replay log"):
            load_crash_bundle(bundle)

    def test_missing_snapshot_raises_snapshot_error(self, bundle):
        (bundle / "snapshot.json").unlink()
        with pytest.raises(SnapshotError, match="missing"):
            load_crash_bundle(bundle)

    def test_cli_bundle_on_missing_module(self, bundle, capsys):
        (bundle / "module.wasm").unlink()
        assert main(["bundle", str(bundle)]) == EXIT_FAILURE
        assert "cannot be read" in capsys.readouterr().err

    def test_cli_replay_on_missing_log(self, bundle, capsys):
        (bundle / "replay.jsonl").unlink()
        assert main(["replay", str(bundle)]) == EXIT_FAILURE
        assert "replay log" in capsys.readouterr().err

    def test_not_a_bundle_directory(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert main(["bundle", str(empty)]) == EXIT_FAILURE
        assert "not a crash bundle" in capsys.readouterr().err


class TestCorruptPayloads:
    def test_corrupt_replay_log(self, bundle):
        path = bundle / "replay.jsonl"
        path.write_text(path.read_text()[:-20] + "\n{ half a line")
        with pytest.raises(WasmError, match="corrupt replay log"):
            load_crash_bundle(bundle)

    def test_wrong_schema_replay_log(self, bundle):
        (bundle / "replay.jsonl").write_text(
            '{"schema": "something/else"}\n{"kind": "x"}\n')
        with pytest.raises(WasmError, match="not a repro replay log"):
            load_crash_bundle(bundle)

    def test_non_object_log_header(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(WasmError, match="not a repro replay log"):
            load_log(path)

    def test_corrupt_snapshot_raises_snapshot_error(self, bundle):
        (bundle / "snapshot.json").write_text("{ definitely not json")
        with pytest.raises(SnapshotError, match="corrupt bundle snapshot"):
            load_crash_bundle(bundle)

    def test_cli_replay_on_corrupt_snapshot(self, bundle, capsys):
        (bundle / "snapshot.json").write_text("{ definitely not json")
        assert main(["replay", str(bundle)]) == EXIT_FAILURE
        assert "snapshot" in capsys.readouterr().err

    def test_corrupt_module_still_loads_then_fails_taxonomically(
            self, bundle, capsys):
        # a module that no longer decodes loads fine (bundle inspection
        # must work on broken binaries) but replay reports EXIT_MALFORMED
        (bundle / "module.wasm").write_bytes(b"\x00asm garbage here")
        loaded = load_crash_bundle(bundle)
        assert loaded.module_bytes.startswith(b"\x00asm")
        assert main(["replay", str(bundle)]) == EXIT_MALFORMED
