"""The supervised instrumentation service (ROADMAP item 1's backbone).

Process-isolated execution for the decode→instrument→encode→execute
pipeline: a pool of recycled worker subprocesses under a watchdog that
enforces hard wall-clock deadlines and an RSS ceiling by SIGKILL,
classifies every death (timeout / oom / crash), respawns with exponential
backoff + jitter, quarantines repeat-killer inputs behind a circuit
breaker, and writes replayable crash bundles instead of stack traces. A
content-addressed artifact cache serves repeated instrumentation
requests, and a unix-socket daemon (``repro serve``) + client expose the
whole thing to other processes. When workers cannot start at all, the
pool degrades to supervised-in-name-only in-process execution —
explicitly reported, never silent.

The running service is observable: daemon ops ``stats`` (JSON, schema
``repro.serve-stats/1``) and ``metrics`` (Prometheus text exposition),
an optional localhost HTTP listener for real scrapers, request traces
that cross the client→daemon→worker process boundary, structured
logging with a flight recorder whose tail ships inside every service
crash bundle, and a live ``repro top`` view.
"""

from .cache import CACHE_SCHEMA, ArtifactCache, artifact_key
from .client import ServeClient
from .daemon import STATS_SCHEMA, ServeDaemon
from .pool import WorkerPool
from .supervisor import (KillReport, ServeConfig, WorkerSupervisor,
                         read_rss_mb, rss_monitoring_available)
from .worker import RequestHandler, worker_main

__all__ = [
    "ArtifactCache", "CACHE_SCHEMA", "KillReport", "RequestHandler",
    "STATS_SCHEMA", "ServeClient", "ServeConfig", "ServeDaemon",
    "WorkerPool", "WorkerSupervisor", "artifact_key", "read_rss_mb",
    "rss_monitoring_available", "worker_main",
]
