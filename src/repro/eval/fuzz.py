"""Coverage-guided, parallel fuzzing of the binary pipeline.

The PR-3 fault-injection harness (:mod:`repro.eval.faultinject`) mutates
blindly and single-threaded; this module turns it into a corpus-evolving
campaign engine:

* **Coverage guidance** — every mutant's pipeline run is observed by a
  :class:`~repro.eval.coverage.CoverageCollector` over the decoder,
  validator, instrumenter, and encoder. Mutants that reach new toolkit
  edges are admitted into the corpus, so later mutations start from inputs
  that already penetrate deeper into the pipeline's state space.
* **Sharded execution** — the mutant budget is split into rounds; each
  round fans its contiguous index blocks out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`. Shards are merged in
  submission order (never completion order), so a parallel campaign is as
  deterministic as a serial one modulo coverage-admission timing.
* **Deterministic per-mutant RNG** — every mutant's mutation stream is
  seeded independently from ``(campaign_seed, corpus_entry, index)`` via
  :func:`~repro.eval.faultinject.mutant_rng`, so any shard's mutants can be
  regenerated exactly without replaying the rest of the campaign.
* **Signature dedup + auto-triage** — outcomes are deduplicated across
  shards in one table keyed on the ``(stage, outcome, error-class)``
  taxonomy; the *first* mutant exhibiting a previously unseen signature is
  ddmin-reduced (:mod:`repro.eval.reduce`) and persisted as a replayable
  crash bundle (:func:`repro.interp.replay.write_crash_bundle`).
* **Resumable on-disk corpus** — ``--corpus-dir`` persists evolved entries,
  the coverage map, the signature table, and the campaign cursor in a
  versioned ``corpus.json``; a rerun picks up where the last one stopped
  and only bundles genuinely new signatures.

Everything is pure-stdlib and importable; ``repro fuzz --parallel N
--coverage`` is a thin CLI wrapper and ``benchmarks/test_fuzz_bench.py``
records throughput and guidance quality in ``BENCH_fuzz.json``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from .coverage import CoverageCollector, CoverageMap, default_backend
from .faultinject import (STAGES, Failure, classify, mutant_rng, mutate,
                          save_failure_bundle, seed_corpus)

#: Schema tag of the on-disk corpus state. Mechanical format changes bump
#: the trailing number; readers refuse anything else.
CORPUS_SCHEMA = "repro.fuzz-corpus/1"

#: Version of the mutation/coverage semantics baked into persisted corpora.
#: Bump when MUTATORS, the per-mutant RNG derivation, or the edge encoding
#: change: an evolved corpus only transfers between identical semantics,
#: and the CI corpus cache key includes this number so stale caches are
#: discarded instead of resumed.
MUTATOR_VERSION = 1

#: Mutants per shard per round. Large enough to amortize process-pool
#: dispatch and payload pickling, small enough that coverage and corpus
#: admissions propagate between shards a few times per second.
DEFAULT_ROUND_SIZE = 500


def signature_key(stage: str | None, outcome: str, exc_type: str | None) -> str:
    """The dedup-table key for one pipeline outcome, as a flat string."""
    return f"{stage or 'pass'}/{outcome}/{exc_type or '-'}"


@dataclass
class FuzzConfig:
    """One campaign's knobs (everything the shards need is derived here)."""

    mutants: int = 5000
    seed: int = 20260806
    parallel: int = 1
    coverage: bool = False
    execute: bool = True
    engines: tuple = (True, False)
    corpus_dir: str | None = None
    #: where reduced new-signature bundles go; defaults to
    #: ``<corpus_dir>/signatures`` when a corpus dir is given.
    signatures_dir: str | None = None
    #: where escape crash bundles go (mirrors ``repro fuzz --save-failures``).
    save_failures: str | None = None
    #: stop admitting rounds once this much wall-clock has elapsed.
    time_budget: float | None = None
    round_size: int = DEFAULT_ROUND_SIZE
    #: ddmin budget per new signature; small on purpose — triage wants a
    #: small reproducer fast, not a 1-minimal one.
    reduce_tests: int = 150
    #: cap on corpus admissions per shard round (keeps rounds bounded when
    #: a fresh campaign discovers hundreds of new edges at once).
    max_additions_per_shard: int = 8
    #: route shards through supervised service workers (repro.serve): hard
    #: wall-clock deadline + RSS ceiling per shard, SIGKILL on breach.
    supervised: bool = False
    #: hard deadline per supervised shard before the worker is killed.
    shard_timeout: float = 120.0
    #: RSS ceiling per supervised shard worker (``None``/0 disables).
    shard_rss_limit_mb: float | None = 2048.0
    #: widen the seed corpus with the WASI-preview1 workloads; their
    #: mutants execute against an injected-fault host module whose fault
    #: seed derives from the mutant bytes (still a pure function).
    wasi: bool = False

    def resolved_signatures_dir(self) -> str | None:
        if self.signatures_dir is not None:
            return self.signatures_dir
        if self.corpus_dir is not None:
            return str(Path(self.corpus_dir) / "signatures")
        return None


@dataclass
class FuzzResult:
    """Aggregate outcome of one (possibly resumed) campaign run."""

    mutants: int = 0
    seed: int = 0
    parallel: int = 1
    coverage: bool = False
    backend: str | None = None
    elapsed: float = 0.0
    rejected_at: dict = field(default_factory=dict)
    survived: int = 0
    escapes: list[Failure] = field(default_factory=list)
    #: signature key -> cumulative count (this run only)
    signatures: dict = field(default_factory=dict)
    #: signature keys first seen during this run, in discovery order
    new_signatures: list = field(default_factory=list)
    corpus_size: int = 0
    corpus_added: int = 0
    edges: int = 0
    new_edges: int = 0
    #: crash-bundle directories written this run (signatures + escapes)
    bundles: list = field(default_factory=list)
    #: signature keys already in the persisted table when the run started
    #: (a resumed campaign must not re-announce or re-bundle them)
    preexisting: frozenset = frozenset()
    #: why a persisted corpus was discarded (stale schema/mutator version),
    #: or None when it loaded cleanly / no corpus dir was used
    corpus_reset: str | None = None
    #: Ctrl-C ended the campaign early; the completed shard prefix was
    #: merged and the resume cursor only advanced over merged blocks
    interrupted: bool = False
    #: shards in supervised mode whose worker the supervisor SIGKILLed
    shards_killed: int = 0
    supervised: bool = False

    @property
    def ok(self) -> bool:
        return not self.escapes

    @property
    def mutants_per_sec(self) -> float:
        return self.mutants / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> str:
        parts = [f"{self.mutants} mutants (seed {self.seed}, "
                 f"{self.parallel} shard{'s' if self.parallel != 1 else ''}"
                 + (f", coverage via {self.backend}" if self.coverage else "")
                 + f") in {self.elapsed:.1f}s "
                 f"({self.mutants_per_sec:,.0f}/s)"]
        for stage in STAGES:
            if stage in self.rejected_at:
                parts.append(f"{self.rejected_at[stage]} rejected at {stage}")
        parts.append(f"{self.survived} survived")
        parts.append(f"{len(self.signatures)} signatures "
                     f"({len(self.new_signatures)} new)")
        if self.coverage:
            parts.append(f"{self.edges} edges (+{self.new_edges}), "
                         f"corpus {self.corpus_size} (+{self.corpus_added})")
        if self.supervised:
            parts.append(f"{self.shards_killed} shards killed")
        parts.append(f"{len(self.escapes)} escapes")
        if self.interrupted:
            parts.append("INTERRUPTED")
        return ", ".join(parts)


# -- on-disk corpus state -------------------------------------------------------


def _entry_name(data: bytes) -> str:
    return "cov-" + hashlib.sha256(data).hexdigest()[:12]


class CorpusState:
    """Seed + evolved corpus entries, coverage map, signature table, cursor.

    The in-memory form the campaign controller works on; :meth:`save` and
    :meth:`load` round-trip it through a ``corpus.json`` plus one
    ``entries/<name>.wasm`` file per evolved entry. Seed entries are always
    regenerated from :func:`~repro.eval.faultinject.seed_corpus` (they are
    deterministic by construction and must not drift with a stale cache).
    """

    def __init__(self, entries: dict[str, bytes] | None = None):
        self.entries: dict[str, bytes] = dict(entries or seed_corpus())
        self.coverage = CoverageMap()
        #: signature key -> cumulative count over the corpus' whole history
        self.signatures: dict[str, int] = {}
        #: next global mutant index (resume cursor)
        self.next_index = 0
        #: evolved entry name -> {"parent": ..., "index": ..., "new_edges": n}
        self.lineage: dict[str, dict] = {}
        #: why :meth:`load` discarded a persisted corpus (None = clean load)
        self.reset_reason: str | None = None

    def admit(self, data: bytes, parent: str, index: int,
              new_edges: int) -> str | None:
        """Add one coverage-earning mutant as a corpus entry."""
        name = _entry_name(data)
        if name in self.entries:
            return None
        self.entries[name] = data
        self.lineage[name] = {"parent": parent, "index": index,
                              "new_edges": new_edges}
        return name

    # -- persistence ---------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        directory = Path(directory)
        entries_dir = directory / "entries"
        entries_dir.mkdir(parents=True, exist_ok=True)
        # WASI seeds count as seed entries too: both sets regenerate
        # deterministically and must never persist as evolved entries
        seed_names = set(seed_corpus(wasi=True))
        for name, data in self.entries.items():
            if name in seed_names:
                continue
            path = entries_dir / f"{name}.wasm"
            if not path.exists():
                path.write_bytes(data)
        state = {
            "schema": CORPUS_SCHEMA,
            "mutator_version": MUTATOR_VERSION,
            "next_index": self.next_index,
            "coverage": self.coverage.to_payload(),
            "signatures": self.signatures,
            "entries": {name: self.lineage.get(name, {})
                        for name in sorted(self.entries)
                        if name not in seed_names},
        }
        (directory / "corpus.json").write_text(
            json.dumps(state, indent=2) + "\n")
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "CorpusState":
        """Load persisted state; starts fresh when the directory is absent,
        or carries an incompatible schema/mutator version (a stale CI cache
        must degrade to a fresh campaign, not an error). A discarded corpus
        records *why* in ``reset_reason`` — the campaign surfaces it as a
        stderr warning and a ``fuzz_corpus_reset`` telemetry event instead
        of silently throwing evolved entries away."""
        state = cls()
        directory = Path(directory)
        path = directory / "corpus.json"
        if not path.is_file():
            return state
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            state.reset_reason = f"unreadable corpus.json: {exc}"
            return state
        schema = payload.get("schema")
        if schema != CORPUS_SCHEMA:
            state.reset_reason = (f"stale corpus schema {schema!r} "
                                  f"(current is {CORPUS_SCHEMA!r})")
            return state
        version = payload.get("mutator_version")
        if version != MUTATOR_VERSION:
            state.reset_reason = (f"stale mutator version {version!r} "
                                  f"(current is {MUTATOR_VERSION})")
            return state
        state.next_index = int(payload.get("next_index", 0))
        state.coverage = CoverageMap.from_payload(payload.get("coverage", ()))
        state.signatures = {str(k): int(v)
                            for k, v in payload.get("signatures", {}).items()}
        for name, lineage in payload.get("entries", {}).items():
            entry = directory / "entries" / f"{name}.wasm"
            if entry.is_file():
                state.entries[name] = entry.read_bytes()
                state.lineage[name] = lineage
        return state


def load_corpus_entries(directory: str | Path) -> dict[str, bytes]:
    """Seed + evolved entries, for ``regenerate_mutant(corpus=...)``."""
    return dict(CorpusState.load(directory).entries)


# -- shard worker ---------------------------------------------------------------


def _shard_worker(payload: dict) -> dict:
    """Fuzz one contiguous block of mutant indices; run in a worker process.

    Pure function of its payload: the corpus snapshot, the known coverage
    and signature tables, and the index block. Returns plain picklable
    data; the controller owns all merging.
    """
    entries: dict[str, bytes] = payload["entries"]
    names = sorted(entries)
    seed: int = payload["seed"]
    execute: bool = payload["execute"]
    engines = tuple(payload["engines"])
    want_coverage: bool = payload["coverage"]
    known_signatures = set(payload["known_signatures"])
    max_additions: int = payload["max_additions"]

    coverage = CoverageMap(payload["known_edges"]) if want_coverage else None
    collector = CoverageCollector() if want_coverage else None

    rejected_at: dict[str, int] = {}
    survived = 0
    signature_counts: dict[str, int] = {}
    signature_examples: dict[str, dict] = {}
    escapes: list[dict] = []
    additions: list[dict] = []

    # Guided scheduling state: seeds and evolved frontier entries alternate
    # (even indices draw from the seed stream, odd from the frontier), and
    # guided mutants use single-op mutation so children stay close to their
    # interesting parent. Blind mode keeps the legacy round-robin + 1-3 op
    # schedule, so parallel blind aggregates match the serial harness.
    evolved = [n for n in names if n.startswith("cov-")]
    seeds_only = [n for n in names if not n.startswith("cov-")]
    max_ops = 1 if want_coverage else 3

    if collector is not None:
        collector.__enter__()
    try:
        for index in payload["indices"]:
            if want_coverage:
                if not evolved or index % 2 == 0:
                    name = seeds_only[(index // 2) % len(seeds_only)]
                else:
                    name = evolved[(index // 2) % len(evolved)]
            else:
                name = names[index % len(names)]
            rng = mutant_rng(seed, name, index)
            mutant, recipe = mutate(entries[name], rng, max_ops=max_ops)
            outcome = classify(mutant, execute=execute, engines=engines)
            sig = signature_key(outcome.stage, outcome.outcome,
                                outcome.exc_type)
            signature_counts[sig] = signature_counts.get(sig, 0) + 1
            record = {
                "name": name, "index": index, "recipe": recipe,
                "max_ops": max_ops,
                "stage": outcome.stage, "outcome": outcome.outcome,
                "exc_type": outcome.exc_type, "message": outcome.message,
                "mutant": mutant,
            }
            if sig not in known_signatures and sig not in signature_examples:
                signature_examples[sig] = record
            if outcome.outcome == "escape":
                escapes.append(record)
            elif outcome.outcome == "pass":
                survived += 1
            else:
                rejected_at[outcome.stage] = rejected_at.get(outcome.stage, 0) + 1
            if collector is not None:
                new = coverage.add_all(collector.drain())
                # Admission gate: only keep mutants whose pipeline run went
                # deep — full passes or execute-stage rejections. Mutants
                # that die in the decoder reach "new" edges too (error
                # paths), but evolving toward decode garbage starves the
                # deep-stage frontier the guidance exists to push.
                deep = (outcome.outcome == "pass"
                        or outcome.stage == "execute")
                if new and deep and len(additions) < max_additions:
                    additions.append({"parent": name, "index": index,
                                      "data": mutant,
                                      "edges": sorted(new)})
    finally:
        if collector is not None:
            collector.__exit__(None, None, None)

    return {
        "mutants": len(payload["indices"]),
        "rejected_at": rejected_at,
        "survived": survived,
        "signature_counts": signature_counts,
        "signature_examples": signature_examples,
        "escapes": escapes,
        "additions": additions,
        "new_edges": sorted(coverage.edges - set(payload["known_edges"]))
                     if coverage is not None else [],
    }


def _shard_payload(config: FuzzConfig, state: CorpusState,
                   indices: list[int]) -> dict:
    return {
        "seed": config.seed,
        "indices": indices,
        "entries": dict(state.entries),
        "execute": config.execute,
        "engines": tuple(config.engines),
        "coverage": config.coverage,
        "known_edges": state.coverage.to_payload(),
        "known_signatures": sorted(state.signatures),
        "max_additions": config.max_additions_per_shard,
    }


# -- signature triage -----------------------------------------------------------


def _bundle_dir_name(sig: str) -> str:
    return sig.replace("/", "-").replace(".", "_")


def _record_failure(record: dict, seed: int) -> Failure:
    return Failure(corpus_name=record["name"], index=record["index"],
                   seed=seed, stage=record["stage"] or "unknown",
                   recipe=record["recipe"], exc_type=record["exc_type"] or "-",
                   message=record["message"] or "")


def save_signature_bundle(record: dict, seed: int, directory: str | Path,
                          execute: bool = True,
                          engines: tuple = (True, False),
                          reduce_tests: int = 150) -> Path:
    """Reduce one new-signature example and persist it as a crash bundle.

    The bundle manifest mirrors escape bundles (``kind: pipeline`` with the
    fuzz provenance triple), so ``repro replay`` and ``repro bundle`` work
    on it unchanged; reduction preserves the signature by construction.
    """
    from ..interp.replay import write_crash_bundle
    from .faultinject import Classification
    from .reduce import reduce_failure

    target = Classification(stage=record["stage"], outcome=record["outcome"],
                            exc_type=record["exc_type"],
                            message=record["message"])
    mutant = record["mutant"]
    reduction = None
    if reduce_tests > 0:
        try:
            mutant, reduction = reduce_failure(
                mutant, target=target, execute=execute, engines=engines,
                max_tests=reduce_tests)
        except ValueError:
            pass  # e.g. a flaky non-reproducing example: keep it unreduced
    sig = signature_key(record["stage"], record["outcome"], record["exc_type"])
    manifest = {
        "kind": "pipeline",
        "error": {"type": record["exc_type"], "message": record["message"],
                  "stage": record["stage"], "outcome": record["outcome"]},
        "fuzz": {"seed": seed, "corpus": record["name"],
                 "index": record["index"], "recipe": record["recipe"],
                 "max_ops": record.get("max_ops", 3),
                 "signature": sig},
    }
    if reduction is not None:
        manifest["reduction"] = {
            "original_size": reduction.original_size,
            "reduced_size": reduction.reduced_size,
            "tests": reduction.tests,
        }
    target_dir = Path(directory) / _bundle_dir_name(sig)
    return write_crash_bundle(target_dir, mutant, manifest)


# -- the campaign controller ----------------------------------------------------


def _ignore_sigint() -> None:
    """Process-pool initializer: shard workers must not die on the
    terminal's Ctrl-C (the whole foreground process group receives it);
    the parent cancels pending shards and drains the running ones, then
    converts the interrupt into the exit taxonomy."""
    import signal
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - non-main thread
        pass


def _supervised_shard(pool, payload: dict, config: FuzzConfig) -> dict | None:
    """Run one shard in a supervised service worker.

    ``None`` means the supervisor SIGKILLed the shard (hard deadline, RSS
    ceiling, or a crash that exhausted its retry): the campaign counts the
    kill and advances the cursor past the block instead of dying with it.
    A clean worker-side error, by contrast, is a controller bug and raises.
    """
    from ..wasm.errors import ServiceError, WorkerKilled
    try:
        response = pool.submit({"kind": "fuzz_shard", "payload": payload},
                               timeout=config.shard_timeout)
    except WorkerKilled:
        return None
    except ServiceError as exc:  # pragma: no cover - e.g. pool closed
        raise RuntimeError(f"supervised shard failed: {exc}") from exc
    if not response.get("ok"):
        error = response.get("error", {})
        raise RuntimeError(f"supervised shard failed: {error.get('type')}: "
                           f"{error.get('message')}")
    return response["shard"]


def _merge_shard(config: FuzzConfig, state: CorpusState, result: FuzzResult,
                 shard: dict) -> None:
    """Fold one shard's report into the campaign state, deduplicating.

    Merging is the only place campaign-global state changes, and shards
    are merged in submission order, so the same shard reports always
    produce the same campaign state regardless of completion order.
    """
    result.mutants += shard["mutants"]
    result.survived += shard["survived"]
    for stage, count in shard["rejected_at"].items():
        result.rejected_at[stage] = result.rejected_at.get(stage, 0) + count
    for sig, count in shard["signature_counts"].items():
        state.signatures[sig] = state.signatures.get(sig, 0) + count
        result.signatures[sig] = result.signatures.get(sig, 0) + count

    sig_dir = config.resolved_signatures_dir()
    for sig in sorted(shard["signature_examples"]):
        if sig in result.new_signatures or sig in result.preexisting:
            continue  # an earlier shard/round or a resumed table owns it
        result.new_signatures.append(sig)
        # the all-stages-pass signature is tracked but not bundled: there
        # is no failure to reproduce (or reduce) in it
        if sig_dir is not None and shard["signature_examples"][sig]["outcome"] != "pass":
            bundle = save_signature_bundle(
                shard["signature_examples"][sig], config.seed, sig_dir,
                execute=config.execute, engines=config.engines,
                reduce_tests=config.reduce_tests)
            result.bundles.append(str(bundle))

    for record in shard["escapes"]:
        failure = _record_failure(record, config.seed)
        result.escapes.append(failure)
        if config.save_failures is not None:
            bundle = save_failure_bundle(failure, record["mutant"],
                                         config.save_failures)
            result.bundles.append(str(bundle))

    if config.coverage:
        actually_new = state.coverage.add_all(shard["new_edges"])
        result.new_edges += len(actually_new)
        for addition in shard["additions"]:
            # re-check admissions against the *merged* map: an entry only
            # enters the corpus if some of its edges were still unseen
            # after every earlier shard (and round) was folded in
            if not set(addition["edges"]) & actually_new:
                continue
            name = state.admit(addition["data"], addition["parent"],
                               addition["index"],
                               len(set(addition["edges"])))
            if name is not None:
                result.corpus_added += 1


def run_fuzz_campaign(config: FuzzConfig) -> FuzzResult:
    """Run one campaign (serial, sharded, or supervised) and return its
    merged result.

    Ctrl-C never loses completed work: shard workers ignore SIGINT, the
    parent cancels pending shards, merges the contiguous prefix of
    completed ones, and advances the resume cursor only over merged
    blocks — so a resumed campaign regenerates exactly the un-merged
    mutants (``result.interrupted`` tells the CLI to exit non-zero).
    """
    started = time.perf_counter()
    state = (CorpusState.load(config.corpus_dir)
             if config.corpus_dir is not None else CorpusState())
    if config.wasi:
        from .faultinject import wasi_corpus
        for name, data in wasi_corpus().items():
            state.entries.setdefault(name, data)
    result = FuzzResult(seed=config.seed, parallel=max(1, config.parallel),
                        coverage=config.coverage,
                        supervised=config.supervised,
                        backend=default_backend() if config.coverage else None)
    if state.reset_reason is not None:
        result.corpus_reset = state.reset_reason
        from ..obs.log import get_logger
        get_logger("repro.fuzz").warning(
            "fuzz corpus reset",
            msg=f"{state.reset_reason}; starting a fresh campaign",
            reason=state.reset_reason)
    # signatures already in the persisted table are not "new" this run
    result.preexisting = frozenset(state.signatures)

    executor = None
    pool = None
    run_one = _shard_worker
    if config.supervised:
        from concurrent.futures import ThreadPoolExecutor

        from ..serve import ServeConfig, WorkerPool
        pool = WorkerPool(ServeConfig(
            workers=max(1, config.parallel),
            request_timeout=config.shard_timeout,
            rss_limit_mb=config.shard_rss_limit_mb or None)).start()
        executor = ThreadPoolExecutor(max_workers=max(1, config.parallel),
                                      thread_name_prefix="repro-fuzz-shard")

        def run_one(payload, _pool=pool):
            return _supervised_shard(_pool, payload, config)
    elif config.parallel > 1:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        executor = ProcessPoolExecutor(max_workers=config.parallel,
                                       mp_context=context,
                                       initializer=_ignore_sigint)
    try:
        remaining = config.mutants
        while remaining > 0:
            if (config.time_budget is not None
                    and time.perf_counter() - started >= config.time_budget):
                break
            workers = max(1, config.parallel)
            round_total = min(remaining, workers * config.round_size)
            start = state.next_index
            blocks, cursor = [], start
            for shard in range(workers):
                share = round_total // workers + (1 if shard < round_total % workers else 0)
                if share:
                    blocks.append(list(range(cursor, cursor + share)))
                    cursor += share
            payloads = [_shard_payload(config, state, block)
                        for block in blocks]
            completed: list = []
            futures: list = []
            try:
                if executor is None:
                    for payload in payloads:
                        completed.append(run_one(payload))
                else:
                    futures = [executor.submit(run_one, payload)
                               for payload in payloads]
                    for future in futures:
                        completed.append(future.result())
            except KeyboardInterrupt:
                result.interrupted = True
                for future in futures:
                    future.cancel()
            # submission-order merge over the contiguous completed prefix
            # (all of it on a normal round); a killed supervised shard
            # (None) is counted and skipped, its block's cursor advance
            # kept — its mutants are deterministically regenerable
            merged = 0
            for report, block in zip(completed, blocks):
                if report is None:
                    result.shards_killed += 1
                else:
                    _merge_shard(config, state, result, report)
                state.next_index = block[-1] + 1
                merged += len(block)
            remaining -= merged
            if result.interrupted:
                break
    finally:
        if executor is not None:
            executor.shutdown()
        if pool is not None:
            pool.close()

    result.elapsed = time.perf_counter() - started
    result.corpus_size = len(state.entries)
    result.edges = len(state.coverage)
    if config.corpus_dir is not None:
        state.save(config.corpus_dir)
    return result


# -- telemetry folding ----------------------------------------------------------


def fold_into_telemetry(result: FuzzResult, telemetry) -> None:
    """Publish campaign stats on a :class:`repro.obs.Telemetry` sink."""
    if telemetry is None:
        return
    registry = telemetry.registry
    registry.counter("repro_fuzz_mutants_total",
                     help="mutants driven through the pipeline").set(
        result.mutants)
    for stage, count in sorted(result.rejected_at.items()):
        registry.counter("repro_fuzz_rejections_total",
                         labels={"stage": stage},
                         help="mutants rejected per pipeline stage").set(count)
    registry.counter("repro_fuzz_survivors_total",
                     help="mutants surviving the whole pipeline").set(
        result.survived)
    registry.counter("repro_fuzz_escapes_total",
                     help="non-WasmError pipeline escapes").set(
        len(result.escapes))
    registry.counter("repro_fuzz_signatures_total",
                     help="distinct (stage, outcome, error-class) "
                          "signatures this campaign").set(
        len(result.signatures))
    registry.gauge("repro_fuzz_mutants_per_second",
                   help="campaign throughput").set(result.mutants_per_sec)
    registry.gauge("repro_fuzz_corpus_size",
                   help="corpus entries after evolution").set(
        result.corpus_size)
    registry.gauge("repro_fuzz_coverage_edges",
                   help="toolkit edges in the coverage frontier").set(
        result.edges)
    if result.supervised:
        registry.counter("repro_fuzz_shards_killed_total",
                         help="supervised shards SIGKILLed by the "
                              "service watchdog").set(result.shards_killed)
    for failure in result.escapes:
        telemetry.event("fuzz_escape", detail=str(failure))
    for sig in result.new_signatures:
        telemetry.event("fuzz_new_signature", signature=sig)
    if result.corpus_reset:
        telemetry.event("fuzz_corpus_reset", reason=result.corpus_reset)
    if result.interrupted:
        telemetry.event("fuzz_interrupted", mutants=result.mutants,
                        next_index_saved=True)


def bench_payload(result: FuzzResult) -> dict:
    """The BENCH_fuzz.json fragment for one campaign run."""
    return {
        "mutants": result.mutants,
        "seed": result.seed,
        "parallel": result.parallel,
        "coverage": result.coverage,
        "backend": result.backend,
        "elapsed_seconds": round(result.elapsed, 4),
        "mutants_per_sec": round(result.mutants_per_sec, 1),
        "signatures": len(result.signatures),
        "new_signatures": len(result.new_signatures),
        "corpus_size": result.corpus_size,
        "edges": result.edges,
        "escapes": len(result.escapes),
        "rejected_at": dict(sorted(result.rejected_at.items())),
        "survived": result.survived,
        "supervised": result.supervised,
        "shards_killed": result.shards_killed,
    }
