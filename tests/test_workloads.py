"""The evaluation workloads: PolyBench ports, synthetic binaries, corpus."""

import pytest

from repro.eval import polybench_workloads, realworld_workloads
from repro.eval.faithfulness import run_original
from repro.interp import Machine
from repro.wasm import encode_module, validate_module
from repro.workloads import corpus, engine_demo, pdf_toolkit
from repro.workloads.polybench import compile_kernel, get_kernel, kernel_names


class TestPolybenchSuite:
    def test_thirty_kernels(self):
        assert len(kernel_names()) == 30

    def test_categories_match_polybench42(self):
        from collections import Counter
        categories = Counter(get_kernel(n).category for n in kernel_names())
        assert categories == {
            "datamining": 2,
            "linear-algebra/blas": 7,
            "linear-algebra/kernels": 6,
            "linear-algebra/solvers": 6,
            "medley": 3,
            "stencils": 6,
        }

    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_compiles_and_validates(self, name):
        validate_module(compile_kernel(name))

    def test_kernels_are_deterministic(self):
        workload = polybench_workloads(["gemm"])[0]
        first, printed_first = run_original(workload)
        second, printed_second = run_original(workload)
        assert first == second and printed_first == printed_second

    def test_kernels_print_intermediate_results(self):
        # RQ2 relies on observable intermediate output
        for name in ["gemm", "cholesky", "durbin"]:
            _, printed = run_original(polybench_workloads([name])[0])
            assert len(printed) >= 1

    def test_size_parameter(self):
        small = compile_kernel("gemm", 4)
        # different n means different embedded constants -> different binary
        assert encode_module(small) != encode_module(compile_kernel("gemm", 8))
        from repro.interp import Linker
        from repro.wasm.types import F64, FuncType
        linker = Linker().define_function("env", "print_f64",
                                          FuncType((F64,), ()), lambda a: None)
        # still runs
        Machine().instantiate(small, linker).invoke("main")

    def test_kernels_use_floating_point_heavily(self):
        # PolyBench is numeric: the paper attributes its high `binary`
        # overhead to exactly this
        module = compile_kernel("gemm")
        ops = [i.op for _, _, i in module.iter_instructions()]
        assert ops.count("f64.mul") + ops.count("f64.add") > 5


class TestSyntheticBinaries:
    def test_deterministic_generation(self):
        a = encode_module(engine_demo.__wrapped__(1.0))
        b = encode_module(engine_demo.__wrapped__(1.0))
        assert a == b

    def test_profiles_differ(self):
        assert encode_module(engine_demo()) != encode_module(pdf_toolkit())

    def test_validate(self):
        validate_module(engine_demo())
        validate_module(pdf_toolkit())

    def test_engine_larger_than_pdf(self):
        assert len(encode_module(engine_demo())) > len(encode_module(pdf_toolkit()))

    def test_scale_parameter(self):
        small = engine_demo.__wrapped__(0.5)
        assert len(encode_module(small)) < len(encode_module(engine_demo()))
        validate_module(small)

    def test_diverse_instruction_mix(self):
        # the real-world stand-ins must exercise what PolyBench does not
        module = engine_demo()
        ops = {i.op for _, _, i in module.iter_instructions()}
        assert "br_table" in ops
        assert "call_indirect" in ops
        assert "select" in ops
        assert any(op.startswith("i64.") for op in ops)

    def test_pdf_has_byte_level_traffic(self):
        ops = [i.op for _, _, i in pdf_toolkit().iter_instructions()]
        assert any(op in ("i32.load8_u", "i32.load8_s", "i32.store8") for op in ops)

    def test_wide_call_signatures_present(self):
        # §4.5: the UE4 binary contains a call passing 22 values
        module = engine_demo()
        widest = max(len(t.params) for t in module.types)
        assert widest >= 8

    def test_runs_deterministically(self):
        results = set()
        for _ in range(2):
            instance = Machine().instantiate(engine_demo())
            results.add(tuple(instance.invoke("main", [2])))
        assert len(results) == 1


class TestCorpus:
    def test_size_at_least_paper_suite(self):
        # the paper's spec suite has 63 programs; ours exceeds that
        assert len(corpus()) >= 63

    def test_all_validate(self):
        for program in corpus():
            validate_module(program.module)

    def test_checksums_nonzero(self):
        machine = Machine()
        nonzero = 0
        for program in corpus()[:30]:
            if program.expect_trap:
                continue
            instance = machine.instantiate(program.module)
            result = instance.invoke(program.entry, program.args)
            nonzero += 1 if result[0] != 0 else 0
        assert nonzero > 25  # checksums actually exercise the ops


class TestWorkloadHarness:
    def test_realworld_workloads(self):
        workloads = realworld_workloads()
        assert [w.name for w in workloads] == ["pdf_toolkit", "engine_demo"]
        for workload in workloads:
            result, printed = run_original(workload)
            assert printed == []
            assert isinstance(result, list) and len(result) == 1

    def test_polybench_workload_print_capture(self):
        workload = polybench_workloads(["trisolv"])[0]
        result, printed = run_original(workload)
        assert len(printed) == 13
        assert result[0] == pytest.approx(printed[-1])
