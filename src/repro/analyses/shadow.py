"""Reusable memory shadowing (paper §2.3).

The paper highlights that Wasabi makes memory shadowing — associating
meta-information with every memory value — straightforward: "all an
analysis must do is to maintain a map of memory locations to
meta-information". This module packages that map as a reusable component
(the analogue of Umbra's shadow memory, which the paper cites), so
analyses like taint tracking, definedness checking, or origin tracking
don't each reinvent it.

The shadow lives entirely on the analysis side; the program's own linear
memory is never touched (§1).
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


def access_width(op: str) -> int:
    """Byte width accessed by a load/store mnemonic."""
    if op.endswith(("8_s", "8_u", "store8")):
        return 1
    if op.endswith(("16_s", "16_u", "store16")):
        return 2
    if op.endswith(("32_s", "32_u", "store32")):
        return 4
    return 4 if op.startswith(("i32", "f32")) else 8


class ShadowMemory(Generic[T]):
    """A byte-granular map from addresses to meta-values.

    Sparse: untouched bytes return ``default``. ``merge`` combines the
    per-byte meta-values of a multi-byte read (defaults to set-union-like
    behaviour via the provided callable).
    """

    def __init__(self, default: T, merge: Callable[[T, T], T]):
        self._bytes: dict[int, T] = {}
        self.default = default
        self.merge = merge

    def write(self, addr: int, width: int, meta: T) -> None:
        if meta == self.default:
            for offset in range(width):
                self._bytes.pop(addr + offset, None)
        else:
            for offset in range(width):
                self._bytes[addr + offset] = meta

    def read(self, addr: int, width: int) -> T:
        meta = self.default
        for offset in range(width):
            meta = self.merge(meta, self._bytes.get(addr + offset, self.default))
        return meta

    def write_for(self, op: str, addr: int, meta: T) -> None:
        self.write(addr, access_width(op), meta)

    def read_for(self, op: str, addr: int) -> T:
        return self.read(addr, access_width(op))

    def clear(self, addr: int, width: int) -> None:
        self.write(addr, width, self.default)

    def shadowed_bytes(self) -> int:
        return len(self._bytes)

    def regions(self) -> Iterator[tuple[int, int, T]]:
        """Yield maximal runs ``(start, length, meta)`` of equal meta-values."""
        addresses = sorted(self._bytes)
        run_start = None
        run_meta = None
        prev = None
        for addr in addresses:
            meta = self._bytes[addr]
            if run_start is not None and addr == prev + 1 and meta == run_meta:
                prev = addr
                continue
            if run_start is not None:
                yield run_start, prev - run_start + 1, run_meta
            run_start, run_meta, prev = addr, meta, addr
        if run_start is not None:
            yield run_start, prev - run_start + 1, run_meta
