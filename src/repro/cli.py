"""Command-line interface, mirroring the Wasabi tool's workflow.

The original Wasabi ships a CLI that takes a ``.wasm`` file and produces an
instrumented binary plus generated hook/metadata files. This module offers
the equivalent, plus the usual binary-toolkit conveniences:

  python -m repro instrument app.wasm -o app.instr.wasm --hooks call,return
  python -m repro validate app.wasm
  python -m repro objdump app.wasm            # WAT-style disassembly
  python -m repro compile kernel.mc -o kernel.wasm
  python -m repro run app.wasm main 1 2 --analysis mix
  python -m repro run app.wasm main --fuel 1000000 --timeout 5
  python -m repro run app.wasm main -v --metrics-out m.json --trace-out t.json
  python -m repro run app.wasm main --profile --metrics-out m.json
  python -m repro report m.json               # render a metrics artifact
  python -m repro stats app.wasm              # sizes, sections, instr mix
  python -m repro fuzz --mutants 5000         # fault-injection campaign

Exit codes: 0 success, 1 failure (invalid module, trap, fuzz escapes),
2 usage error, 4 resource exhaustion (fuel/deadline/memory budget hit).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from .analyses import (BasicBlockProfiler, BranchCoverage, CallGraphAnalysis,
                       CryptominerDetector, InstructionCoverage,
                       InstructionMixAnalysis, MemoryTracer)
from .core import (ALL_GROUPS, ERROR_POLICIES, Analysis, AnalysisSession,
                   instrument_module)
from .interp import Linker, Machine, ResourceLimits
from .minic import compile_source
from .obs import Telemetry, maybe_span, render_report
from .wasm import (ResourceExhausted, decode_module, encode_module,
                   format_module, validate_module)
from .wasm.types import F64, I32, FuncType

#: Exit status for a run aborted by a ResourceLimits bound.
EXIT_RESOURCE_EXHAUSTED = 4

ANALYSES = {
    "mix": InstructionMixAnalysis,
    "blocks": BasicBlockProfiler,
    "coverage": InstructionCoverage,
    "branches": BranchCoverage,
    "callgraph": CallGraphAnalysis,
    "cryptominer": CryptominerDetector,
    "memtrace": MemoryTracer,
    "none": Analysis,
}


def _load(path: str):
    return decode_module(Path(path).read_bytes())


def _default_linker(printed: list | None = None) -> Linker:
    """Host imports that MiniC-compiled programs conventionally use."""
    sink = printed if printed is not None else []
    linker = Linker()
    linker.define_function("env", "print_f64", FuncType((F64,), ()),
                           lambda args: sink.append(args[0]))
    linker.define_function("env", "print_i32", FuncType((I32,), ()),
                           lambda args: sink.append(args[0]))
    return linker


def _telemetry_from_args(args: argparse.Namespace) -> Telemetry | None:
    """Build the run's telemetry sink when any telemetry flag is set."""
    if not (getattr(args, "metrics_out", None) or getattr(args, "trace_out", None)
            or getattr(args, "profile", False)):
        return None
    return Telemetry(profile=bool(getattr(args, "profile", False)))


def _write_artifacts(telemetry: Telemetry | None, args: argparse.Namespace,
                     usage=None) -> None:
    """Write the --metrics-out / --trace-out artifacts, reporting on stderr."""
    if telemetry is None:
        return
    if args.metrics_out:
        path = telemetry.write_metrics(args.metrics_out, usage)
        print(f"repro: metrics written to {path}", file=sys.stderr)
    if args.trace_out:
        path = telemetry.write_trace(args.trace_out)
        print(f"repro: trace written to {path}", file=sys.stderr)


def cmd_instrument(args: argparse.Namespace) -> int:
    telemetry = _telemetry_from_args(args)
    with maybe_span(telemetry, "decode", path=args.input):
        module = _load(args.input)
    groups = None
    if args.hooks != "all":
        groups = frozenset(args.hooks.split(","))
        unknown = groups - ALL_GROUPS
        if unknown:
            print(f"unknown hooks: {', '.join(sorted(unknown))}; "
                  f"available: {', '.join(sorted(ALL_GROUPS))}", file=sys.stderr)
            return 2
    with maybe_span(telemetry, "instrument"):
        result = instrument_module(module, groups=groups)
    with maybe_span(telemetry, "encode"):
        raw = encode_module(result.module)
    output = args.output or (Path(args.input).stem + ".instrumented.wasm")
    Path(output).write_bytes(raw)
    original_size = Path(args.input).stat().st_size
    print(f"instrumented {args.input} -> {output}")
    print(f"  hooks generated: {result.hook_count}")
    print(f"  size: {original_size} -> {len(raw)} bytes "
          f"({100 * (len(raw) - original_size) / original_size:+.1f}%)")
    if args.metadata:
        meta = {
            "hooks": [{"name": spec.name, "kind": spec.kind,
                       "params": [t.value for t in spec.wasm_params]}
                      for spec in result.info.hooks],
            "functions": [{"idx": f.idx, "name": f.name,
                           "type": str(f.type), "imported": f.imported}
                          for f in result.info.module_info.functions],
        }
        Path(args.metadata).write_text(json.dumps(meta, indent=2))
        print(f"  metadata: {args.metadata}")
    _write_artifacts(telemetry, args)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        validate_module(_load(args.input))
    except Exception as exc:
        print(f"{args.input}: INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"{args.input}: ok")
    return 0


def cmd_objdump(args: argparse.Namespace) -> int:
    print(format_module(_load(args.input)))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Compile MiniC (``.mc``) or WAT text (``.wat``) to a binary."""
    source = Path(args.input).read_text()
    if args.input.endswith(".wat") or source.lstrip().startswith("(module"):
        from .wasm import parse_wat
        module = parse_wat(source)
    else:
        module = compile_source(source, Path(args.input).stem)
    validate_module(module)
    output = args.output or (Path(args.input).stem + ".wasm")
    raw = encode_module(module)
    Path(output).write_bytes(raw)
    print(f"compiled {args.input} -> {output} ({len(raw)} bytes, "
          f"{module.instruction_count()} instructions)")
    return 0


def _limits_from_args(args: argparse.Namespace) -> ResourceLimits | None:
    limits = None
    if not (args.fuel is None and args.timeout is None
            and args.max_memory_pages is None):
        limits = ResourceLimits(fuel=args.fuel, deadline_seconds=args.timeout,
                                max_memory_pages=args.max_memory_pages)
    if getattr(args, "verbose", False):
        # -v reports resource usage, which requires the meter even when no
        # bound is set; observe=True meters without bounding anything
        limits = (replace(limits, observe=True) if limits is not None
                  else ResourceLimits(observe=True))
    return limits


def cmd_run(args: argparse.Namespace) -> int:
    telemetry = _telemetry_from_args(args)
    with maybe_span(telemetry, "decode", path=args.input):
        module = _load(args.input)
    call_args = [float(a) if "." in a else int(a) for a in args.args]
    printed: list = []
    linker = _default_linker(printed)
    limits = _limits_from_args(args)
    try:
        return _run(args, module, call_args, printed, linker, limits, telemetry)
    except ResourceExhausted as exc:
        print(f"repro: resource limit hit: {exc}", file=sys.stderr)
        return EXIT_RESOURCE_EXHAUSTED


def _run(args: argparse.Namespace, module, call_args, printed, linker,
         limits: ResourceLimits | None, telemetry: Telemetry | None) -> int:
    if args.analysis == "none" and not args.instrument:
        machine = Machine(limits=limits, telemetry=telemetry)
        instance = machine.instantiate(module, linker)
        result = instance.invoke(args.entry, call_args)
        usage = machine.resource_usage()
    else:
        analysis = ANALYSES[args.analysis]()
        session = AnalysisSession(module, analysis, linker=linker,
                                  limits=limits,
                                  on_analysis_error=args.on_analysis_error,
                                  telemetry=telemetry)
        result = session.invoke(args.entry, call_args)
        usage = session.resource_usage()
        if isinstance(analysis, InstructionMixAnalysis):
            print(analysis.report())
        elif isinstance(analysis, CryptominerDetector):
            print(f"signature fraction: {analysis.signature_fraction:.2%}; "
                  f"suspicious: {analysis.is_suspicious()}")
        elif isinstance(analysis, MemoryTracer):
            print(f"{len(analysis.trace)} accesses, "
                  f"{analysis.unique_addresses()} unique addresses")
        elif isinstance(analysis, BasicBlockProfiler):
            for (loc, kind), count in analysis.hottest(10):
                print(f"  {kind:<9} {loc}: {count}")
    for value in printed:
        print(f"[print] {value}")
    print(f"{args.entry}({', '.join(map(str, call_args))}) = {result}")
    if args.verbose:
        print(f"repro: {usage.summary()}", file=sys.stderr)
    _write_artifacts(telemetry, args, usage)
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run the seeded fault-injection campaign (see repro.eval.faultinject)."""
    from .eval.faultinject import run_campaign

    engines: tuple[bool, ...] = (True, False)
    if args.engine == "predecode":
        engines = (True,)
    elif args.engine == "legacy":
        engines = (False,)
    telemetry = _telemetry_from_args(args)
    with maybe_span(telemetry, "fuzz_campaign", mutants=args.mutants,
                    seed=args.seed):
        result = run_campaign(mutants=args.mutants, seed=args.seed,
                              execute=not args.no_execute, engines=engines)
    if telemetry is not None:
        registry = telemetry.registry
        for stage, count in sorted(result.rejected_at.items()):
            registry.counter("repro_fuzz_rejections_total",
                             labels={"stage": stage},
                             help="mutants rejected per pipeline stage").set(count)
        registry.counter("repro_fuzz_survivors_total",
                         help="mutants surviving the whole pipeline").set(
            result.survived)
        registry.counter("repro_fuzz_escapes_total",
                         help="non-WasmError pipeline escapes").set(
            len(result.failures))
        for failure in result.failures:
            telemetry.event("fuzz_escape", detail=str(failure))
    print(result.summary())
    for failure in result.failures:
        print(f"ESCAPE {failure}", file=sys.stderr)
    _write_artifacts(telemetry, args)
    return 0 if result.ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    """Render a --metrics-out JSON artifact as a human-readable summary."""
    try:
        payload = json.loads(Path(args.input).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro: cannot read {args.input}: {exc}", file=sys.stderr)
        return 1
    try:
        print(render_report(payload, top=args.top))
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    module = _load(args.input)
    size = Path(args.input).stat().st_size
    print(f"{args.input}: {size} bytes")
    print(f"  types: {len(module.types)}")
    print(f"  imports: {len(module.imports)} "
          f"({module.num_imported_functions} functions)")
    print(f"  functions: {len(module.functions)} defined")
    print(f"  instructions: {module.instruction_count()}")
    print(f"  exports: {', '.join(e.name for e in module.exports) or '-'}")
    from collections import Counter
    groups = Counter(i.info.group.value for _, _, i in module.iter_instructions()
                     if i.info.group)
    print("  static instruction mix:")
    for group, count in groups.most_common(8):
        print(f"    {group:<12} {count}")
    return 0


def _add_telemetry_flags(p: argparse.ArgumentParser,
                         profile: bool = True) -> None:
    """The shared --metrics-out/--trace-out/--profile telemetry flags."""
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="write run metrics (.json, or .prom for Prometheus "
                        "text exposition)")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write pipeline spans (.json Chrome trace-event "
                        "format for Perfetto, or .jsonl for span-per-line)")
    if profile:
        p.add_argument("--profile", action="store_true",
                       help="attach the engine self-profiler (pre-decoded "
                            "engine only; report with `repro report`)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Wasabi (reproduction) WebAssembly toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("instrument", help="instrument a .wasm binary")
    p.add_argument("input")
    p.add_argument("-o", "--output")
    p.add_argument("--hooks", default="all",
                   help="comma-separated hook groups (default: all)")
    p.add_argument("--metadata", help="write hook/function metadata JSON")
    _add_telemetry_flags(p, profile=False)
    p.set_defaults(fn=cmd_instrument, profile=False)

    p = sub.add_parser("validate", help="type check a .wasm binary")
    p.add_argument("input")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("objdump", help="disassemble to WAT-style text")
    p.add_argument("input")
    p.set_defaults(fn=cmd_objdump)

    p = sub.add_parser("compile", help="compile MiniC source to .wasm")
    p.add_argument("input")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="run an exported function")
    p.add_argument("input")
    p.add_argument("entry")
    p.add_argument("args", nargs="*")
    p.add_argument("--analysis", choices=sorted(ANALYSES), default="none")
    p.add_argument("--instrument", action="store_true",
                   help="instrument even without an analysis")
    p.add_argument("--fuel", type=int, default=None,
                   help="abort after this many metered events "
                        "(taken branches + calls)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget per invocation")
    p.add_argument("--max-memory-pages", type=int, default=None,
                   help="cap linear memory at this many 64 KiB pages")
    p.add_argument("--on-analysis-error", choices=ERROR_POLICIES,
                   default="raise",
                   help="policy when an analysis hook raises (default: raise)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="report resource usage (fuel, peak pages, peak call "
                        "depth) on stderr after the run")
    _add_telemetry_flags(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("report",
                       help="render a --metrics-out JSON artifact for humans")
    p.add_argument("input", help="metrics artifact written by --metrics-out")
    p.add_argument("--top", type=int, default=10,
                   help="rows per ranking section (default: 10)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("stats", help="summarize a .wasm binary")
    p.add_argument("input")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("fuzz", help="seeded fault-injection campaign over "
                                    "the decode/validate/instrument pipeline")
    p.add_argument("--mutants", type=int, default=5000)
    p.add_argument("--seed", type=int, default=20260806)
    p.add_argument("--engine", choices=("both", "predecode", "legacy"),
                   default="both",
                   help="engine(s) for the execute stage (default: both)")
    p.add_argument("--no-execute", action="store_true",
                   help="skip executing statically valid mutants")
    _add_telemetry_flags(p, profile=False)
    p.set_defaults(fn=cmd_fuzz, profile=False)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
