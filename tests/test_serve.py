"""The supervised instrumentation service: pool, supervisor, cache, daemon.

Covers the full supervision contract end to end:

* kill taxonomy — hard deadline, RSS ceiling, and abrupt worker death are
  classified and surfaced as :class:`WorkerKilled`, while clean guest
  failures stay ordinary error responses;
* crash isolation — a SIGKILLed worker never takes another in-flight
  request with it;
* retry policy — crash-class kills get one fresh-worker retry, timeouts
  do not;
* circuit breaker — inputs that repeatedly kill workers are quarantined
  (:class:`BreakerOpen`, exit status 9);
* graceful degradation — a pool with no spawnable workers serves
  in-process, disabled-but-reported;
* the content-addressed artifact cache, the wire codec, the unix-socket
  daemon + client, service crash bundles and their replay, and the CLI
  exit statuses 8/9.

Fault injection uses the worker's gated ``__test__`` ops (hang / alloc /
exit / flaky / raise) so every kill class is deterministic.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import EXIT_BREAKER_OPEN, EXIT_WORKER_KILLED, exit_status, main
from repro.serve import (ArtifactCache, ServeClient, ServeConfig, ServeDaemon,
                         WorkerPool, artifact_key, rss_monitoring_available)
from repro.serve import wire
from repro.wasm import (BreakerOpen, ServiceUnavailable, WorkerKilled,
                        encode_module, parse_wat)

SPIN_WAT = """
(module
  (func (export "spin") (param i32) (result i32)
    (local i32 i32)
    block
      loop
        local.get 1
        local.get 0
        i32.ge_s
        br_if 1
        local.get 2
        local.get 1
        i32.add
        local.set 2
        local.get 1
        i32.const 1
        i32.add
        local.set 1
        br 0
      end
    end
    local.get 2)
)
"""

HANG_WAT = '(module (func (export "forever") loop br 0 end))'


@pytest.fixture(scope="module")
def spin_bytes():
    return encode_module(parse_wat(SPIN_WAT))


def make_pool(tmp_path, **overrides) -> WorkerPool:
    defaults = dict(workers=1, request_timeout=10.0, poll_interval=0.01,
                    allow_test_ops=True, max_retries=1, breaker_threshold=2,
                    backoff_base=0.01, backoff_cap=0.05,
                    cache_dir=str(tmp_path / "cache"),
                    crash_dir=str(tmp_path / "crashes"))
    defaults.update(overrides)
    pool = WorkerPool(ServeConfig(**defaults)).start()
    return pool


# -- artifact cache -------------------------------------------------------------


class TestArtifactCache:
    def test_key_depends_on_all_inputs(self):
        base = artifact_key(b"mod", ["call"], {"op": "instrument"})
        assert base == artifact_key(b"mod", ["call"], {"op": "instrument"})
        assert base != artifact_key(b"mod2", ["call"], {"op": "instrument"})
        assert base != artifact_key(b"mod", ["memory"], {"op": "instrument"})
        assert base != artifact_key(b"mod", ["call"], {"op": "other"})
        # group order must not matter; None (= all groups) is distinct
        assert artifact_key(b"m", ["a", "b"]) == artifact_key(b"m", ["b", "a"])
        assert artifact_key(b"m", None) != artifact_key(b"m", [])

    def test_store_load_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        key = artifact_key(b"module", ["call"])
        assert cache.load(key) is None
        cache.store(key, b"payload", {"hook_count": 7})
        payload, meta = cache.load(key)
        assert payload == b"payload"
        assert meta["hook_count"] == 7
        assert cache.stats()["hits"] == 1

    def test_corrupt_payload_is_evicted_not_served(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        key = artifact_key(b"module", None)
        cache.store(key, b"payload", {})
        bin_path, _ = cache._paths(key)
        bin_path.write_bytes(b"flipped bits")
        assert cache.load(key) is None  # digest mismatch: miss, not garbage
        assert cache.stats()["corrupt"] == 1
        assert not bin_path.exists()
        # and the slot is reusable afterwards
        cache.store(key, b"payload", {})
        assert cache.load(key)[0] == b"payload"

    def test_missing_sidecar_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        key = artifact_key(b"module", None)
        cache.store(key, b"payload", {})
        _, meta_path = cache._paths(key)
        meta_path.unlink()  # simulate a write interrupted pre-commit
        assert cache.load(key) is None


# -- wire codec -----------------------------------------------------------------


class TestWire:
    def test_bytes_roundtrip_recursively(self):
        message = {"kind": "run", "module": b"\x00asm\xff",
                   "nested": {"blobs": [b"a", b"b"], "n": 3}}
        decoded = wire.loads(wire.dumps(message))
        assert decoded == message

    def test_rejects_wrong_schema(self):
        line = json.dumps({"schema": "other/1", "kind": "x"}).encode() + b"\n"
        with pytest.raises(wire.WireError, match="not a repro service"):
            wire.loads(line)

    def test_rejects_garbage(self):
        with pytest.raises(wire.WireError, match="malformed"):
            wire.loads(b"{ not json")

    def test_rejects_oversized(self):
        with pytest.raises(wire.WireError, match="cap"):
            wire.loads(b"x" * (wire.MAX_MESSAGE_BYTES + 1))


# -- kills, retries, breaker ----------------------------------------------------


class TestKillTaxonomy:
    def test_clean_requests_and_worker_reuse(self, tmp_path, spin_bytes):
        pool = make_pool(tmp_path)
        try:
            first = pool.submit({"kind": "run", "module": spin_bytes,
                                 "entry": "spin", "args": [100]})
            assert first["ok"] and first["supervised"]
            assert first["results"] == [4950]
            second = pool.submit({"kind": "run", "module": spin_bytes,
                                  "entry": "spin", "args": [10]})
            assert second["results"] == [45]
            assert second["pid"] == first["pid"]  # recycled, not respawned
            assert second["warm"] is True
        finally:
            pool.close()

    def test_guest_trap_is_not_a_kill(self, tmp_path, spin_bytes):
        bad = encode_module(parse_wat(
            "(module (func (export \"die\") unreachable))"))
        pool = make_pool(tmp_path)
        try:
            response = pool.submit({"kind": "run", "module": bad,
                                    "entry": "die", "args": []})
            assert response["ok"] is False
            assert response["error"]["type"] == "Trap"
            assert response["status"] == 3
            assert pool.stats()["kills"] == {"timeout": 0, "oom": 0,
                                             "crash": 0}
        finally:
            pool.close()

    def test_timeout_kill(self, tmp_path):
        pool = make_pool(tmp_path)
        try:
            with pytest.raises(WorkerKilled) as info:
                pool.submit({"kind": "__test__", "mode": "hang"},
                            timeout=0.4)
            assert info.value.kill_class == "timeout"
            assert exit_status(info.value) == EXIT_WORKER_KILLED == 8
            assert pool.stats()["kills"]["timeout"] == 1
        finally:
            pool.close()

    @pytest.mark.skipif(not rss_monitoring_available(),
                        reason="no /proc RSS monitoring on this platform")
    def test_oom_kill(self, tmp_path):
        pool = make_pool(tmp_path, rss_limit_mb=160.0)
        try:
            with pytest.raises(WorkerKilled) as info:
                pool.submit({"kind": "__test__", "mode": "alloc"},
                            timeout=30.0)
            assert info.value.kill_class == "oom"
        finally:
            pool.close()

    def test_abrupt_death_is_a_crash_and_burns_retries(self, tmp_path):
        pool = make_pool(tmp_path, breaker_threshold=100)
        try:
            with pytest.raises(WorkerKilled) as info:
                pool.submit({"kind": "__test__", "mode": "exit", "code": 11})
            assert info.value.kill_class == "crash"
            # deterministic crash: the single retry also died
            assert pool.stats()["retries_total"] == 1
        finally:
            pool.close()

    def test_flaky_crash_recovers_via_retry(self, tmp_path):
        marker = tmp_path / "crashed-once"
        pool = make_pool(tmp_path)
        try:
            response = pool.submit({"kind": "__test__", "mode": "flaky",
                                    "marker": str(marker)})
            assert response["ok"] and response["recovered"]
            stats = pool.stats()
            assert stats["retries_total"] == 1
            assert stats["kills"]["crash"] == 1
        finally:
            pool.close()

    def test_timeout_is_not_retried(self, tmp_path):
        pool = make_pool(tmp_path)
        try:
            with pytest.raises(WorkerKilled):
                pool.submit({"kind": "__test__", "mode": "hang"}, timeout=0.4)
            assert pool.stats()["retries_total"] == 0
        finally:
            pool.close()


class TestBreaker:
    def test_repeat_killer_is_quarantined(self, tmp_path):
        pool = make_pool(tmp_path, max_retries=0)
        request = {"kind": "__test__", "mode": "hang"}
        try:
            for _ in range(2):
                with pytest.raises(WorkerKilled):
                    pool.submit(dict(request), timeout=0.4)
            with pytest.raises(BreakerOpen) as info:
                pool.submit(dict(request), timeout=0.4)
            assert exit_status(info.value) == EXIT_BREAKER_OPEN == 9
            stats = pool.stats()
            assert stats["breaker_open"] == 1
            assert stats["kills"]["timeout"] == 2  # fail-fast, no third kill
        finally:
            pool.close()

    def test_other_inputs_keep_flowing_past_an_open_breaker(self, tmp_path):
        pool = make_pool(tmp_path, max_retries=0)
        try:
            for _ in range(2):
                with pytest.raises(WorkerKilled):
                    pool.submit({"kind": "__test__", "mode": "hang"},
                                timeout=0.4)
            ok = pool.submit({"kind": "__test__", "mode": "ok", "echo": "hi"})
            assert ok["ok"] and ok["echo"] == "hi"
        finally:
            pool.close()


class TestIsolationAndRespawn:
    def test_inflight_requests_survive_a_kill_next_door(self, tmp_path):
        pool = make_pool(tmp_path, workers=2)
        results: dict = {}

        def slow_ok():
            results["ok"] = pool.submit(
                {"kind": "__test__", "mode": "sleep", "seconds": 1.2})

        def doomed():
            try:
                pool.submit({"kind": "__test__", "mode": "hang"}, timeout=0.4)
            except WorkerKilled as exc:
                results["killed"] = exc

        try:
            threads = [threading.Thread(target=slow_ok),
                       threading.Thread(target=doomed)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert results["ok"]["ok"] is True  # unharmed by the SIGKILL
            assert results["killed"].kill_class == "timeout"
        finally:
            pool.close()

    def test_killed_slot_respawns(self, tmp_path):
        pool = make_pool(tmp_path)
        try:
            with pytest.raises(WorkerKilled):
                pool.submit({"kind": "__test__", "mode": "hang"}, timeout=0.4)
            # the replacement worker serves the next request
            response = pool.submit({"kind": "__test__", "mode": "ok"},
                                   timeout=10.0)
            assert response["ok"]
            assert pool.stats()["worker_restarts"] >= 1
        finally:
            pool.close()


class TestDegradation:
    def test_zero_workers_degrades_and_reports(self, tmp_path):
        events = []

        class Sink:
            def event(self, kind, **fields):
                events.append((kind, fields))

        pool = WorkerPool(ServeConfig(workers=0, allow_test_ops=True),
                          telemetry=Sink())
        pool.start()
        try:
            assert pool.degraded
            response = pool.submit({"kind": "__test__", "mode": "ok"})
            assert response["ok"]
            assert response["supervised"] is False
            assert any(kind == "serve_degraded" for kind, _ in events)
        finally:
            pool.close()

    def test_degraded_pool_still_serves_runs(self, tmp_path, spin_bytes):
        pool = WorkerPool(ServeConfig(workers=0,
                                      cache_dir=str(tmp_path / "c")))
        pool.start()
        try:
            response = pool.submit({"kind": "run", "module": spin_bytes,
                                    "entry": "spin", "args": [10]})
            assert response["results"] == [45]
            assert response["supervised"] is False
        finally:
            pool.close()


class TestWarmStart:
    def test_second_uninstrumented_run_is_warm(self, tmp_path, spin_bytes):
        pool = make_pool(tmp_path)
        request = {"kind": "run", "module": spin_bytes, "entry": "spin",
                   "args": [7]}
        try:
            assert pool.submit(dict(request))["warm"] is False
            warm = pool.submit(dict(request))
            assert warm["warm"] is True
            assert warm["results"] == [21]  # state fully restored
            assert pool.stats()["warm_hits"] == 1
        finally:
            pool.close()

    def test_analysis_runs_never_warm_start(self, tmp_path, spin_bytes):
        pool = make_pool(tmp_path)
        request = {"kind": "run", "module": spin_bytes, "entry": "spin",
                   "args": [7], "analysis": "mix"}
        try:
            for _ in range(2):
                response = pool.submit(dict(request))
                assert response["warm"] is False
                assert "instruction mix" in response["analysis_report"]
        finally:
            pool.close()


class TestServiceBundles:
    def test_kill_writes_replayable_service_bundle(self, tmp_path):
        from pathlib import Path
        hang = encode_module(parse_wat(HANG_WAT))
        pool = make_pool(tmp_path, allow_test_ops=False)
        try:
            with pytest.raises(WorkerKilled) as info:
                pool.submit({"kind": "run", "module": hang,
                             "entry": "forever", "args": []}, timeout=0.4)
        finally:
            pool.close()
        bundle = info.value.bundle
        assert bundle is not None
        manifest = json.loads(
            (Path(bundle) / "manifest.json").read_text())
        assert manifest["kind"] == "service"
        assert manifest["error"]["kill_class"] == "timeout"
        assert manifest["service"]["request_timeout"] == pytest.approx(0.4)
        assert "module" not in manifest["service"]["request"]
        # `repro bundle` renders it, `repro replay` reproduces the kill
        assert main(["bundle", bundle]) == 0
        assert main(["replay", bundle]) == 0


class TestDaemonAndClient:
    @pytest.fixture
    def served(self, tmp_path):
        pool = make_pool(tmp_path, workers=2)
        socket_path = tmp_path / "serve.sock"
        daemon = ServeDaemon(socket_path, pool).start()
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        yield ServeClient(socket_path, retries=1, retry_delay=0.05)
        daemon.stop()
        thread.join(timeout=10.0)

    def test_ping_run_stats(self, served, spin_bytes):
        assert served.ping()["ok"]
        response = served.run(spin_bytes, "spin", [100])
        assert response["ok"]
        assert response["results"] == [4950]
        stats = served.stats()
        assert stats["ok"] and stats["stats"]["requests_total"] >= 2

    def test_kill_maps_to_status_8_over_the_wire(self, served):
        response = served.request({"kind": "__test__", "mode": "hang",
                                   "request_timeout": 0.4})
        assert response["ok"] is False
        assert response["status"] == 8
        assert response["error"]["kill_class"] == "timeout"

    def test_instrument_via_daemon_hits_cache(self, served, spin_bytes):
        cold = served.instrument(spin_bytes, ["call"])
        assert cold["ok"] and cold["cache_hit"] is False
        warm = served.instrument(spin_bytes, ["call"])
        assert warm["ok"] and warm["cache_hit"] is True
        assert warm["module"] == cold["module"]

    def test_malformed_line_gets_structured_error(self, served, tmp_path):
        import socket as socketlib
        with socketlib.socket(socketlib.AF_UNIX,
                              socketlib.SOCK_STREAM) as conn:
            conn.connect(str(tmp_path / "serve.sock"))
            conn.sendall(b"this is not a wire message\n")
            with conn.makefile("rb") as reader:
                response = wire.loads(reader.readline())
        assert response["ok"] is False and response["status"] == 2

    def test_shutdown_then_unreachable(self, served):
        assert served.shutdown_daemon()["ok"]
        time.sleep(0.3)
        with pytest.raises(ServiceUnavailable):
            served.ping()

    def test_unreachable_socket_raises_service_unavailable(self, tmp_path):
        client = ServeClient(tmp_path / "nowhere.sock", retries=1,
                             retry_delay=0.01)
        with pytest.raises(ServiceUnavailable, match="cannot reach"):
            client.ping()


class TestSocketOwnership:
    """Stale-socket reclamation vs live-daemon protection at start()."""

    def test_stale_socket_is_reclaimed(self, tmp_path):
        import socket as socketlib
        path = tmp_path / "serve.sock"
        stale = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        stale.bind(str(path))
        stale.close()  # file remains, nothing accepts: a killed daemon
        assert path.exists()
        pool = make_pool(tmp_path, workers=0)
        daemon = ServeDaemon(path, pool).start()
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            assert ServeClient(path, retries=1, retry_delay=0.05).ping()["ok"]
        finally:
            daemon.stop()
            thread.join(timeout=10.0)
            pool.close()

    def test_live_socket_is_protected(self, tmp_path):
        from repro.wasm import ServiceError
        path = tmp_path / "serve.sock"
        pool = make_pool(tmp_path, workers=0)
        daemon = ServeDaemon(path, pool).start()
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        pool2 = make_pool(tmp_path, workers=0)
        try:
            with pytest.raises(ServiceError, match="already serving"):
                ServeDaemon(path, pool2).start()
            # the usurper must not have unlinked the live daemon's socket
            assert ServeClient(path, retries=1, retry_delay=0.05).ping()["ok"]
        finally:
            daemon.stop()
            thread.join(timeout=10.0)
            pool.close()
            pool2.close()

    def test_non_socket_file_is_never_deleted(self, tmp_path):
        from repro.wasm import ServiceError
        path = tmp_path / "serve.sock"
        path.write_text("precious data, not a socket\n")
        pool = make_pool(tmp_path, workers=0)
        try:
            with pytest.raises(ServiceError, match="not a socket"):
                ServeDaemon(path, pool).start()
            assert path.read_text() == "precious data, not a socket\n"
        finally:
            pool.close()


class TestServeCLI:
    """`repro run/instrument --serve` against a live daemon."""

    @pytest.fixture
    def served(self, tmp_path):
        pool = make_pool(tmp_path, workers=1)
        socket_path = tmp_path / "serve.sock"
        daemon = ServeDaemon(socket_path, pool).start()
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        yield str(socket_path)
        daemon.stop()
        thread.join(timeout=10.0)

    @pytest.fixture
    def spin_file(self, tmp_path, spin_bytes):
        path = tmp_path / "spin.wasm"
        path.write_bytes(spin_bytes)
        return path

    def test_run_via_serve(self, served, spin_file, capsys):
        assert main(["run", str(spin_file), "spin", "100",
                     "--serve", served]) == 0
        assert "spin(100) = [4950]" in capsys.readouterr().out

    def test_run_kill_exits_8(self, served, tmp_path, capsys):
        hang = tmp_path / "hang.wasm"
        hang.write_bytes(encode_module(parse_wat(HANG_WAT)))
        assert main(["run", str(hang), "forever", "--serve", served,
                     "--serve-timeout", "0.4"]) == EXIT_WORKER_KILLED
        err = capsys.readouterr().err
        assert "killed: timeout" in err and "crash bundle" in err

    def test_breaker_exits_9(self, served, tmp_path, capsys):
        hang = tmp_path / "hang.wasm"
        hang.write_bytes(encode_module(parse_wat(HANG_WAT)))
        for _ in range(2):
            assert main(["run", str(hang), "forever", "--serve", served,
                         "--serve-timeout", "0.4"]) == EXIT_WORKER_KILLED
        assert main(["run", str(hang), "forever", "--serve", served,
                     "--serve-timeout", "0.4"]) == EXIT_BREAKER_OPEN
        assert "quarantined" in capsys.readouterr().err

    def test_instrument_via_serve(self, served, spin_file, tmp_path, capsys):
        out = tmp_path / "out.wasm"
        assert main(["instrument", str(spin_file), "-o", str(out),
                     "--serve", served]) == 0
        assert "service: worker" in capsys.readouterr().out
        assert main(["instrument", str(spin_file), "-o", str(out),
                     "--serve", served]) == 0
        assert "service: cache" in capsys.readouterr().out
        from repro.wasm import decode_module
        decode_module(out.read_bytes())  # the served artifact is a module

    def test_serve_unavailable_exits_1(self, tmp_path, spin_file, capsys):
        assert main(["run", str(spin_file), "spin", "1",
                     "--serve", str(tmp_path / "gone.sock")]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_record_refused_with_serve(self, served, spin_file, tmp_path,
                                       capsys):
        assert main(["run", str(spin_file), "spin", "1", "--serve", served,
                     "--record", str(tmp_path / "b")]) == 2


class TestSupervisedFuzz:
    def test_supervised_campaign_matches_unsupervised(self):
        from repro.eval.fuzz import FuzzConfig, run_fuzz_campaign
        plain = run_fuzz_campaign(FuzzConfig(mutants=120, seed=7))
        supervised = run_fuzz_campaign(
            FuzzConfig(mutants=120, seed=7, supervised=True, parallel=2))
        assert supervised.supervised and not plain.supervised
        assert supervised.mutants == plain.mutants == 120
        assert supervised.signatures == plain.signatures
        assert supervised.rejected_at == plain.rejected_at
        assert supervised.shards_killed == 0

    def test_corpus_reset_is_reported(self, tmp_path, capsys):
        from repro.eval.fuzz import (CORPUS_SCHEMA, CorpusState, FuzzConfig,
                                     run_fuzz_campaign)
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "corpus.json").write_text(json.dumps(
            {"schema": CORPUS_SCHEMA, "mutator_version": 999,
             "next_index": 123}))
        state = CorpusState.load(corpus)
        assert "stale mutator version 999" in state.reset_reason
        assert state.next_index == 0
        result = run_fuzz_campaign(FuzzConfig(mutants=20, seed=7,
                                              corpus_dir=str(corpus)))
        assert "stale mutator version 999" in result.corpus_reset
        assert "fuzz corpus reset" in capsys.readouterr().err
        # the fresh campaign re-persisted a current-version corpus
        saved = json.loads((corpus / "corpus.json").read_text())
        assert saved["mutator_version"] != 999

    def test_corpus_reset_emits_telemetry_event(self, tmp_path):
        from repro.eval.fuzz import (FuzzConfig, fold_into_telemetry,
                                     run_fuzz_campaign)
        from repro.obs import Telemetry
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "corpus.json").write_text("{ not json")
        result = run_fuzz_campaign(FuzzConfig(mutants=20, seed=7,
                                              corpus_dir=str(corpus)))
        telemetry = Telemetry()
        fold_into_telemetry(result, telemetry)
        assert any(event.kind == "fuzz_corpus_reset"
                   for event in telemetry.events)

    def test_parallel_workers_ignore_sigint(self):
        # the initializer is what keeps Ctrl-C from nuking shard workers;
        # pin that it is actually installed on the executor
        import inspect

        from repro.eval import fuzz as fuzz_mod
        source = inspect.getsource(fuzz_mod.run_fuzz_campaign)
        assert "initializer=_ignore_sigint" in source
        import signal
        previous = signal.getsignal(signal.SIGINT)
        try:
            fuzz_mod._ignore_sigint()
            assert signal.getsignal(signal.SIGINT) is signal.SIG_IGN
        finally:
            signal.signal(signal.SIGINT, previous)
