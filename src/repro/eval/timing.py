"""RQ3: time to instrument (paper Table 5) and raw interpreter timing.

Measures the full binary→binary pipeline: decode the ``.wasm`` bytes,
instrument for all hooks, re-encode — the same work Wasabi's CLI does.
Reports mean ± stddev over repetitions, and throughput in MB/s.

Also times the two interpreter engines against each other (the legacy
string-dispatch loop vs. the pre-decoded threaded loop), which backs the
``BENCH_interp.json`` artifact the CI perf floor is anchored to.

All timing funnels through :func:`repro.obs.spans.measure`, so every
measured repeat is a span over one injected clock: pass ``clock=`` for
deterministic tests, or ``tracer=`` to keep the raw spans alongside the
aggregated report (the exporters then render them like any pipeline trace).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable

from ..core.instrument import InstrumentationConfig, instrument_module
from ..interp.machine import Machine
from ..obs.spans import Tracer, measure
from ..wasm.decoder import decode_module
from ..wasm.encoder import encode_module
from ..wasm.module import Module
from .workloads import Workload


@dataclass
class TimingReport:
    name: str
    binary_bytes: int
    mean_seconds: float
    stdev_seconds: float
    repeats: int

    @property
    def throughput_mb_per_s(self) -> float:
        return (self.binary_bytes / 1e6) / self.mean_seconds


def instrument_binary(raw: bytes,
                      config: InstrumentationConfig | None = None) -> bytes:
    """The binary→binary pipeline being timed."""
    module = decode_module(raw)
    result = instrument_module(module, config=config)
    return encode_module(result.module)


def time_instrumentation(name: str, module: Module, repeats: int = 5,
                         config: InstrumentationConfig | None = None,
                         clock: Callable[[], float] | None = None,
                         tracer: Tracer | None = None) -> TimingReport:
    raw = encode_module(module)
    samples = measure(lambda: instrument_binary(raw, config), repeats,
                      name="instrument_binary", tracer=tracer, clock=clock,
                      attrs={"workload": name})
    return TimingReport(
        name=name, binary_bytes=len(raw),
        mean_seconds=statistics.mean(samples),
        stdev_seconds=statistics.stdev(samples) if len(samples) > 1 else 0.0,
        repeats=repeats)


# -- interpreter engine timing (predecoded vs. legacy dispatch) ---------------


@dataclass
class InterpBenchReport:
    """One workload timed across the interpreter engine configurations.

    Three columns: the legacy string-dispatch loop, the unquickened
    predecoded engine with the default fusion set (the PR-1 engine, kept
    as the ablation), and the full profile-guided configuration (PGO
    fusion table + quickening). ``opcode_classes`` carries the workload's
    *dynamic* opcode-class mix so per-workload ratios are diagnosable.
    """

    name: str
    legacy_seconds: float
    predecoded_seconds: float
    repeats: int
    pgo_seconds: float | None = None
    opcode_classes: dict[str, float] | None = None

    @property
    def predecode_speedup(self) -> float:
        """Unquickened predecoded engine vs legacy (the PR-1 ablation)."""
        if self.predecoded_seconds == 0:
            return float("inf")
        return self.legacy_seconds / self.predecoded_seconds

    @property
    def speedup(self) -> float:
        """The headline ratio: best configuration vs legacy."""
        best = self.pgo_seconds if self.pgo_seconds is not None \
            else self.predecoded_seconds
        if best == 0:
            return float("inf")
        return self.legacy_seconds / best


def time_workload(workload: Workload, repeats: int = 3,
                  predecode: bool | None = None,
                  clock: Callable[[], float] | None = None,
                  tracer: Tracer | None = None,
                  quicken: bool | None = None,
                  pgo_profile=None) -> float:
    """Best-of-``repeats`` uninstrumented runtime on the chosen engine.

    Instantiates fresh per repeat (memory/globals reset) but times only the
    invoke, so decode cost is excluded — matching how the overhead sweep
    times its baseline. Each repeat is one ``workload_invoke`` span.
    ``quicken``/``pgo_profile`` select the quickened / profile-guided
    engine configurations (predecoded machines only).
    """
    if tracer is None:
        tracer = Tracer(clock=clock) if clock is not None else Tracer()
    module = workload.module()
    best = float("inf")
    if predecode is not None and not predecode:
        engine = "legacy"
    elif pgo_profile is not None:
        engine = "pgo"
    else:
        engine = "predecode"
    for _ in range(repeats):
        machine = Machine(predecode=predecode, quicken=quicken,
                          pgo_profile=pgo_profile)
        instance = machine.instantiate(module, workload.linker())
        elapsed, = measure(
            lambda: instance.invoke(workload.entry, workload.args), 1,
            name="workload_invoke", tracer=tracer,
            attrs={"workload": workload.name, "engine": engine})
        best = min(best, elapsed)
    return best


def bench_interpreter(workloads: list[Workload], repeats: int = 3,
                      clock: Callable[[], float] | None = None,
                      tracer: Tracer | None = None,
                      pgo: bool = True,
                      fusion_table: dict | None = None,
                      profiles: dict[str, dict] | None = None
                      ) -> list[InterpBenchReport]:
    """Time every workload across the engine configurations.

    With ``pgo=True`` this first *closes the profile→dispatch loop*: each
    workload is profiled once (deterministic, unfused stream), the merged
    corpus profile yields the fusion table (unless a pre-derived
    ``fusion_table`` is supplied, e.g. the committed corpus artifact), and
    the PGO column runs with that table plus quickening. The recorded
    per-workload profiles also supply each report's dynamic opcode-class
    mix.
    """
    from ..interp.pgo import opcode_class_mix, record_workload_profile

    if profiles is None:
        profiles = {}
    if pgo:
        for w in workloads:
            if w.name not in profiles:
                profiles[w.name] = record_workload_profile(w)
        if fusion_table is None:
            from ..interp.pgo import fusion_table_payload, merge_profiles
            fusion_table = fusion_table_payload(
                merge_profiles(list(profiles.values())))
    reports = []
    for workload in workloads:
        legacy = time_workload(workload, repeats, predecode=False,
                               clock=clock, tracer=tracer)
        predecoded = time_workload(workload, repeats, predecode=True,
                                   quicken=False, clock=clock, tracer=tracer)
        pgo_seconds = None
        classes = None
        if pgo:
            pgo_seconds = time_workload(workload, repeats, predecode=True,
                                        quicken=True,
                                        pgo_profile=fusion_table,
                                        clock=clock, tracer=tracer)
            classes = opcode_class_mix(profiles[workload.name])
        reports.append(InterpBenchReport(workload.name, legacy, predecoded,
                                         repeats, pgo_seconds=pgo_seconds,
                                         opcode_classes=classes))
    return reports


def geomean_speedup(reports: list[InterpBenchReport]) -> float:
    if not reports:
        return 1.0
    return math.exp(sum(math.log(r.speedup) for r in reports) / len(reports))


def _geomean(values: list[float]) -> float:
    if not values:
        return 1.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def interp_bench_payload(reports: list[InterpBenchReport],
                         fusion_table: dict | None = None) -> dict:
    """The JSON payload recorded as ``BENCH_interp.json``.

    ``geomean_speedup`` is the headline (best configuration vs legacy);
    ``geomean_predecode_speedup`` keeps the unquickened ablation visible.
    """
    payload = {
        "workloads": [
            {
                "name": r.name,
                "legacy_seconds": r.legacy_seconds,
                "predecoded_seconds": r.predecoded_seconds,
                "pgo_seconds": r.pgo_seconds,
                "speedup": r.speedup,
                "predecode_speedup": r.predecode_speedup,
                "opcode_classes": r.opcode_classes,
                "repeats": r.repeats,
            }
            for r in reports
        ],
        "geomean_speedup": geomean_speedup(reports),
        "geomean_predecode_speedup": _geomean(
            [r.predecode_speedup for r in reports]),
    }
    if fusion_table is not None:
        payload["fusion_pairs"] = [[first, second]
                                   for first, second, *_ in
                                   fusion_table.get("pairs", [])]
    return payload
