"""Shared infrastructure for the PolyBench/C kernel suite in MiniC.

The paper evaluates on the 30 PolyBench/C programs compiled with
emscripten. We port every kernel to MiniC (same algorithms, same loop and
memory structure) and compile with :mod:`repro.minic`; problem sizes are
scaled down so runs complete quickly under the Python interpreter.

Every kernel program follows the same contract:

* it imports ``env.print_f64`` and reports intermediate results through it
  (the paper's RQ2 faithfulness check compares these outputs between the
  original and the instrumented binary);
* it exports ``main() -> f64`` returning a final checksum;
* arrays live in linear memory as ``f64`` (or ``i32``) element views with
  compile-time base offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from ...minic import compile_source
from ...wasm.module import Module

#: Prologue shared by all kernels: host imports and checksum helpers.
PROLOGUE = """
import func print_f64(x: f64);

func checksum_f64(base: i32, len: i32) -> f64 {
    var s: f64 = 0.0;
    var i: i32;
    for (i = 0; i < len; i = i + 1) {
        s = s + mem_f64[base + i];
    }
    return s;
}

func checksum_i32(base: i32, len: i32) -> f64 {
    var s: f64 = 0.0;
    var i: i32;
    for (i = 0; i < len; i = i + 1) {
        s = s + f64(mem_i32[base + i]);
    }
    return s;
}
"""


@dataclass(frozen=True)
class Kernel:
    """One PolyBench kernel: a MiniC source generator plus metadata."""

    name: str
    category: str
    source_fn: Callable[[int], str]
    default_n: int

    def source(self, n: int | None = None) -> str:
        return PROLOGUE + self.source_fn(n or self.default_n)


KERNELS: dict[str, Kernel] = {}


def register(name: str, category: str, default_n: int):
    """Decorator registering a kernel source generator."""

    def wrap(fn: Callable[[int], str]) -> Callable[[int], str]:
        if name in KERNELS:
            raise ValueError(f"duplicate kernel {name!r}")
        KERNELS[name] = Kernel(name, category, fn, default_n)
        return fn

    return wrap


def kernel_names() -> list[str]:
    """All kernel names, importing the category modules on first use."""
    _load_all()
    return sorted(KERNELS)


def get_kernel(name: str) -> Kernel:
    _load_all()
    return KERNELS[name]


@lru_cache(maxsize=None)
def compile_kernel(name: str, n: int | None = None) -> Module:
    """Compile a kernel to a WebAssembly module (cached)."""
    kernel = get_kernel(name)
    return compile_source(kernel.source(n), name)


def _load_all() -> None:
    from . import (datamining, linalg_blas, linalg_kernels,  # noqa: F401
                   linalg_solvers, medley, stencils)
