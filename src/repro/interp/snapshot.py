"""Versioned, serializable snapshots of full instance state.

A snapshot captures everything the guest can observe about an instance at
an *invocation boundary* (no live frames): linear memory (as sparse
non-zero 64 KiB pages plus a SHA-256 content digest), globals, the
function table, and the machine's cumulative meter residue (fuel spent,
peak depth, deadline-check phase). Both engines produce and consume the
same representation — state capture happens at the instance level, below
the engine split — and the differential tests assert that an execution
resumed from ``restore(snapshot(m))`` is bit-identical on either engine.

Design rules:

* **Plain data.** ``Snapshot.as_dict()`` is JSON-ready (page contents are
  base64, floats are hex-encoded IEEE-754 bit patterns so NaN payloads and
  signed zeros survive the round trip exactly); ``Snapshot.from_dict``
  validates the schema tag.
* **Strict restore.** Restoring checks shape (global count/types, table
  size) against the live instance and re-verifies the memory content
  digest afterwards; any mismatch raises
  :class:`~repro.wasm.errors.SnapshotError` rather than silently resuming
  from corrupt state.
* **No engine state.** Decoded streams, hook bindings, and block-matching
  tables are derived data; a snapshot restored into a freshly instantiated
  module (same bytes, either engine) resumes identically.
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..wasm.errors import SnapshotError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .machine import Instance

#: Schema tag stamped into every snapshot (bump on breaking change).
SNAPSHOT_SCHEMA = "repro.snapshot/1"


# -- exact value codec (shared with repro.interp.replay) ------------------------


def encode_value(value: int | float) -> int | dict:
    """JSON-encode one canonical runtime value, bit-exactly.

    Integers (already in canonical unsigned form) pass through — JSON
    integers are arbitrary precision. Floats are encoded as the hex of
    their little-endian IEEE-754 binary64 pattern, so NaN payloads,
    infinities, and ``-0.0`` survive exactly (``json`` would round-trip
    ``repr`` but cannot represent NaN portably).
    """
    if isinstance(value, float):
        return {"f": struct.pack("<d", value).hex()}
    return value


def decode_value(encoded: int | dict) -> int | float:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict):
        return struct.unpack("<d", bytes.fromhex(encoded["f"]))[0]
    return encoded


def encode_values(values) -> list:
    return [encode_value(v) for v in values]


def decode_values(encoded) -> list:
    return [decode_value(v) for v in encoded]


# -- the snapshot -----------------------------------------------------------------


@dataclass
class Snapshot:
    """Full instance state at an invocation boundary.

    ``memory`` is ``None`` for modules without linear memory; otherwise
    ``{"size_pages": int, "pages": {page_idx: bytes}, "digest": sha256hex}``
    with only non-zero pages present. ``table`` is the entries list (or
    None), ``globals_`` the canonical global values, and ``usage`` the
    meter residue (empty for unmetered machines).
    """

    memory: dict | None = None
    globals_: list = field(default_factory=list)
    table: list | None = None
    usage: dict = field(default_factory=dict)

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict:
        memory = None
        if self.memory is not None:
            memory = {
                "size_pages": self.memory["size_pages"],
                "digest": self.memory["digest"],
                "pages": {str(idx): base64.b64encode(chunk).decode("ascii")
                          for idx, chunk in sorted(self.memory["pages"].items())},
            }
        return {
            "schema": SNAPSHOT_SCHEMA,
            "memory": memory,
            "globals": encode_values(self.globals_),
            "table": self.table,
            "usage": dict(self.usage),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Snapshot":
        if payload.get("schema") != SNAPSHOT_SCHEMA:
            raise SnapshotError(
                f"not a repro snapshot (schema {payload.get('schema')!r}, "
                f"expected {SNAPSHOT_SCHEMA!r})")
        memory = None
        raw_memory = payload.get("memory")
        if raw_memory is not None:
            memory = {
                "size_pages": int(raw_memory["size_pages"]),
                "digest": raw_memory["digest"],
                "pages": {int(idx): base64.b64decode(chunk)
                          for idx, chunk in raw_memory.get("pages", {}).items()},
            }
        return cls(
            memory=memory,
            globals_=decode_values(payload.get("globals", [])),
            table=list(payload["table"]) if payload.get("table") is not None
            else None,
            usage=dict(payload.get("usage", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        return cls.from_dict(json.loads(text))

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def read(cls, path: str | Path) -> "Snapshot":
        return cls.from_json(Path(path).read_text())


def _memory_digest(data: bytearray) -> str:
    return hashlib.sha256(bytes(data)).hexdigest()


def snapshot_instance(instance: "Instance") -> Snapshot:
    """Capture an instance's full state (call only at invocation boundaries)."""
    snap = Snapshot()
    memory = instance.memory
    if memory is not None:
        snap.memory = {
            "size_pages": memory.size_pages,
            "pages": memory.snapshot_pages(),
            "digest": _memory_digest(memory.data),
        }
    snap.globals_ = [g.value for g in instance.globals]
    if instance.table is not None:
        snap.table = instance.table.snapshot_entries()
    meter = instance.machine._meter
    if meter is not None:
        snap.usage = meter.residue()
    return snap


def restore_instance(instance: "Instance", snap: Snapshot) -> None:
    """Restore a snapshot into an instance of the same module.

    Shape mismatches (missing memory/table, wrong global count) and a
    post-restore digest mismatch raise :class:`SnapshotError`; on success
    the instance resumes exactly the captured state on either engine.
    """
    if snap.memory is not None:
        if instance.memory is None:
            raise SnapshotError("snapshot has linear memory, instance has none")
        instance.memory.restore_pages(snap.memory["size_pages"],
                                      snap.memory["pages"])
        digest = _memory_digest(instance.memory.data)
        if digest != snap.memory["digest"]:
            raise SnapshotError(
                f"memory digest mismatch after restore: snapshot "
                f"{snap.memory['digest'][:12]}…, restored {digest[:12]}…")
    elif instance.memory is not None and instance.memory.size_bytes:
        raise SnapshotError("instance has linear memory, snapshot has none")
    if len(snap.globals_) != len(instance.globals):
        raise SnapshotError(
            f"snapshot has {len(snap.globals_)} globals, instance has "
            f"{len(instance.globals)}")
    for box, value in zip(instance.globals, snap.globals_):
        box.value = value
    if snap.table is not None:
        if instance.table is None:
            raise SnapshotError("snapshot has a table, instance has none")
        instance.table.restore_entries(snap.table)
    # call_indirect inline caches are engine state, never serialized: reset
    # the cells so no memoized callee resolved against pre-restore table
    # state survives (they re-warm on the next indirect call)
    for cell in getattr(instance, "_ic_cells", ()):
        cell[0] = cell[1] = cell[2] = None
    meter = instance.machine._meter
    if meter is not None and snap.usage:
        meter.restore_residue(snap.usage)


def diff_instance(instance: "Instance", snap: Snapshot) -> list[str]:
    """Differences between an instance's live state and a snapshot.

    Returns human-readable mismatch descriptions (empty = states agree).
    Used by the differential tests and by ``repro bundle`` verification.
    """
    mismatches: list[str] = []
    live = snapshot_instance(instance)
    if (live.memory is None) != (snap.memory is None):
        mismatches.append("memory presence differs")
    elif live.memory is not None and snap.memory is not None:
        if live.memory["size_pages"] != snap.memory["size_pages"]:
            mismatches.append(
                f"memory size: live {live.memory['size_pages']} pages, "
                f"snapshot {snap.memory['size_pages']}")
        if live.memory["digest"] != snap.memory["digest"]:
            mismatches.append(
                f"memory digest: live {live.memory['digest'][:12]}…, "
                f"snapshot {snap.memory['digest'][:12]}…")
    if encode_values(live.globals_) != encode_values(snap.globals_):
        mismatches.append(
            f"globals: live {live.globals_!r}, snapshot {snap.globals_!r}")
    if live.table != snap.table:
        mismatches.append("table entries differ")
    return mismatches
