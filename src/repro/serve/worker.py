"""The worker side of the service: request execution inside a subprocess.

``worker_main`` is the subprocess entry point: a recv/handle/send loop over
the supervisor's pipe. :class:`RequestHandler` does the actual work and is
deliberately process-agnostic — the pool reuses it in-process verbatim for
the degraded (unsupervised) fallback, so both paths execute requests
through exactly one code path.

Request kinds:

* ``ping`` — liveness handshake.
* ``run`` — decode + instantiate + invoke, mirroring ``repro run``.
  Uninstrumented runs are **warm-started**: the worker instantiates a
  module once per (digest, limits, engine flags), snapshots the fresh
  instance, and restores the snapshot per request instead of
  re-instantiating (:mod:`repro.interp.snapshot`). Analysis runs always
  build a fresh session — analyses accumulate state by design.
* ``instrument`` — decode + instrument + encode through the
  content-addressed :class:`~repro.serve.cache.ArtifactCache`.
* ``fuzz_shard`` — one fuzz-campaign shard
  (:func:`repro.eval.fuzz._shard_worker`) so supervised campaigns get
  crash isolation per shard.
* ``__test__`` — deterministic fault injection (hang / alloc / exit /
  flaky / sleep / raise), only honored when the supervisor was configured
  with ``allow_test_ops``.

Every guest failure — traps, resource exhaustion, malformed modules,
analysis faults — is caught and answered as an ordinary error response
carrying the CLI's exit-status taxonomy. Only genuinely abnormal process
death reaches the supervisor as a kill.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import signal
import time
from collections import OrderedDict

from ..interp.snapshot import (decode_values, encode_values,
                               restore_instance, snapshot_instance)
from ..obs.spans import SpanContext, Tracer
from ..wasm.errors import WasmError

#: Warm instances kept per worker (LRU); each holds a machine + snapshot.
WARM_CACHE_CAPACITY = 8


def _error_response(exc: BaseException) -> dict:
    from ..cli import exit_status
    response = {"ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
                "status": exit_status(exc) if isinstance(exc, WasmError) else 1}
    location = getattr(exc, "location", None)
    if location is not None:
        response["error"]["location"] = str(location)
    return response


def _tspan(tracer: Tracer | None, name: str, **attrs):
    """A tracer span, or a no-op context when the request is untraced."""
    if tracer is None:
        return contextlib.nullcontext()
    return tracer.span(name, **attrs)


class RequestHandler:
    """Executes service requests; one per worker (or per degraded pool)."""

    def __init__(self, cache_dir: str | None = None,
                 allow_test_ops: bool = False):
        self.allow_test_ops = allow_test_ops
        self.cache = None
        if cache_dir is not None:
            from .cache import ArtifactCache
            self.cache = ArtifactCache(cache_dir)
        #: (module digest, limits json, flags json) -> warm entry
        self._warm: OrderedDict[tuple, dict] = OrderedDict()
        self._module_cache: OrderedDict[str, object] = OrderedDict()
        self._tracer: Tracer | None = None  # per-request, set by handle()

    # -- dispatch ------------------------------------------------------------

    def handle(self, request: dict) -> dict:
        kind = request.get("kind")
        # continue the caller's trace; pings stay untraced (nothing inside
        # a ping is worth a span, and it is the latency-floor benchmark op)
        trace = request.pop("trace", None)
        tracer = None
        if trace is not None and kind != "ping":
            try:
                tracer = Tracer(context=SpanContext.from_dict(trace),
                                process="worker")
            except (KeyError, TypeError):
                tracer = None
        self._tracer = tracer
        try:
            if tracer is not None:
                with tracer.span("worker_handle", op=str(kind),
                                 pid=os.getpid()):
                    response = self._dispatch(kind, request)
            else:
                response = self._dispatch(kind, request)
        except WasmError as exc:
            response = _error_response(exc)
        except Exception as exc:  # an escape: report, never kill the loop
            response = _error_response(exc)
        finally:
            self._tracer = None
        if tracer is not None and isinstance(response, dict):
            response.setdefault("spans", []).extend(
                span.as_dict() for span in tracer.spans)
        return response

    def _dispatch(self, kind: str | None, request: dict) -> dict:
        if kind == "ping":
            return {"ok": True, "pid": os.getpid()}
        if kind == "run":
            return self._handle_run(request)
        if kind == "instrument":
            return self._handle_instrument(request)
        if kind == "fuzz_shard":
            return self._handle_fuzz_shard(request)
        if kind == "__test__":
            return self._handle_test_op(request)
        return {"ok": False, "status": 2,
                "error": {"type": "UsageError",
                          "message": f"unknown request kind {kind!r}"}}

    # -- run ------------------------------------------------------------------

    def _decode_cached(self, module_bytes: bytes, digest: str):
        """Decode once per module digest (decoded streams are reused too)."""
        from ..wasm import decode_module
        module = self._module_cache.get(digest)
        if module is None:
            module = decode_module(module_bytes)
            self._module_cache[digest] = module
            if len(self._module_cache) > WARM_CACHE_CAPACITY:
                self._module_cache.popitem(last=False)
        else:
            self._module_cache.move_to_end(digest)
        return module

    def _handle_run(self, request: dict) -> dict:
        from ..cli import ANALYSES, _default_linker, _report_analysis
        from ..core import AnalysisSession
        from ..interp import Machine, ResourceLimits

        module_bytes: bytes = request["module"]
        digest = hashlib.sha256(module_bytes).hexdigest()
        entry: str = request["entry"]
        call_args = decode_values(request.get("args", []))
        analysis_name = request.get("analysis", "none")
        instrument = bool(request.get("instrument", False))
        limits_dict = request.get("limits")
        limits = ResourceLimits(**limits_dict) if limits_dict else None
        predecode = request.get("predecode")
        wasi = None
        if request.get("wasi") is not None:
            from ..wasi import WasiContext
            wasi = WasiContext.from_config(request["wasi"], limits=limits)

        tracer = self._tracer
        with _tspan(tracer, "decode", cached=digest in self._module_cache):
            module = self._decode_cached(module_bytes, digest)
        warm = False
        printed: list = []
        analysis = None
        base_snapshot = None

        if analysis_name == "none" and not instrument and wasi is None:
            warm_key = (digest,
                        json.dumps(limits_dict, sort_keys=True),
                        bool(predecode) if predecode is not None else None)
            entry_state = self._warm.get(warm_key)
            if entry_state is not None:
                self._warm.move_to_end(warm_key)
                machine = entry_state["machine"]
                instance = entry_state["instance"]
                printed = entry_state["printed"]
                printed.clear()
                base_snapshot = entry_state["base"]
                with _tspan(tracer, "warm_restore"):
                    restore_instance(instance, base_snapshot)
                warm = True
            else:
                linker = _default_linker(printed)
                machine = (Machine(limits=limits) if predecode is None
                           else Machine(limits=limits, predecode=predecode))
                with _tspan(tracer, "instantiate"):
                    instance = machine.instantiate(module, linker)
                with _tspan(tracer, "snapshot"):
                    base_snapshot = snapshot_instance(instance)
                self._warm[warm_key] = {
                    "machine": machine, "instance": instance,
                    "printed": printed,
                    "base": base_snapshot,
                }
                if len(self._warm) > WARM_CACHE_CAPACITY:
                    self._warm.popitem(last=False)
            session = None
        elif analysis_name == "none" and not instrument:
            # WASI runs never warm-start: the packed FS image, fault-plane
            # cursor, and syscall counters are per-request state
            linker = _default_linker(printed)
            wasi.register(linker)
            machine = (Machine(limits=limits) if predecode is None
                       else Machine(limits=limits, predecode=predecode))
            with _tspan(tracer, "instantiate", wasi=True):
                instance = machine.instantiate(module, linker)
            session = None
        else:
            linker = _default_linker(printed)
            if wasi is not None:
                wasi.register(linker)
            analysis = ANALYSES[analysis_name]()
            with _tspan(tracer, "instantiate", analysis=analysis_name):
                session = AnalysisSession(
                    module, analysis, linker=linker, limits=limits,
                    on_analysis_error=request.get("on_analysis_error",
                                                  "raise"))
            machine, instance = session.machine, session.instance
        if wasi is not None:
            wasi.bind_memory(instance)

        try:
            with _tspan(tracer, "invoke", entry=entry, warm=warm):
                results = instance.invoke(entry, call_args)
        except WasmError as exc:
            from ..wasm.errors import ProcExit
            if isinstance(exc, ProcExit) and exc.code == 0:
                results = None  # a clean WASI exit, not a failure
            else:
                # a failed run leaves arbitrary instance state; restore
                # eagerly so a later warm hit never resumes from a
                # poisoned instance
                if base_snapshot is not None:
                    restore_instance(instance, base_snapshot)
                response = _error_response(exc)
                response["warm"] = warm
                if wasi is not None:
                    response["stdout"] = wasi.stdout_bytes()
                    response["stderr"] = wasi.stderr_bytes()
                    response["wasi_usage"] = wasi.usage()
                return response
        usage = (machine.resource_usage() if session is None
                 else session.resource_usage())
        response = {
            "ok": True,
            "results": encode_values(results or []),
            "printed": encode_values(printed),
            "usage": usage.as_dict(),
            "warm": warm,
            "pid": os.getpid(),
        }
        if wasi is not None:
            response["stdout"] = wasi.stdout_bytes()
            response["stderr"] = wasi.stderr_bytes()
            response["wasi_usage"] = wasi.usage()
        if analysis is not None:
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                _report_analysis(analysis)
            response["analysis_report"] = buffer.getvalue()
        return response

    # -- instrument ------------------------------------------------------------

    def _handle_instrument(self, request: dict) -> dict:
        from ..core import ALL_GROUPS, instrument_module
        from ..wasm import decode_module, encode_module
        from .cache import artifact_key

        module_bytes: bytes = request["module"]
        groups = request.get("groups")
        if groups is not None:
            groups = frozenset(groups)
            unknown = groups - ALL_GROUPS
            if unknown:
                return {"ok": False, "status": 2,
                        "error": {"type": "UsageError",
                                  "message": "unknown hooks: "
                                             + ", ".join(sorted(unknown))}}
        tracer = self._tracer
        key = artifact_key(module_bytes, groups, {"op": "instrument"})
        evicted_before = self.cache.corrupt if self.cache is not None else 0
        if self.cache is not None:
            with _tspan(tracer, "cache_lookup"):
                cached = self.cache.load(key)
            if cached is not None:
                payload, meta = cached
                return {"ok": True, "module": payload,
                        "hook_count": meta.get("hook_count", 0),
                        "cache_hit": True, "cache_evicted": 0,
                        "pid": os.getpid()}
        with _tspan(tracer, "instrument"):
            module = decode_module(module_bytes)
            result = instrument_module(module, groups=groups)
            raw = encode_module(result.module)
        if self.cache is not None:
            with _tspan(tracer, "cache_store"):
                self.cache.store(key, raw,
                                 {"hook_count": result.hook_count,
                                  "original_size": len(module_bytes)})
        evicted = (self.cache.corrupt - evicted_before
                   if self.cache is not None else 0)
        return {"ok": True, "module": raw, "hook_count": result.hook_count,
                "cache_hit": False, "cache_evicted": evicted,
                "pid": os.getpid()}

    # -- fuzz shard -------------------------------------------------------------

    def _handle_fuzz_shard(self, request: dict) -> dict:
        from ..eval.fuzz import _shard_worker
        return {"ok": True, "shard": _shard_worker(request["payload"]),
                "pid": os.getpid()}

    # -- deterministic fault injection (tests / CI smoke only) ------------------

    def _handle_test_op(self, request: dict) -> dict:
        if not self.allow_test_ops:
            return {"ok": False, "status": 2,
                    "error": {"type": "UsageError",
                              "message": "__test__ ops are disabled "
                                         "(start with allow_test_ops)"}}
        mode = request.get("mode")
        if mode == "ok":
            return {"ok": True, "echo": request.get("echo"),
                    "pid": os.getpid()}
        if mode == "sleep":
            time.sleep(float(request.get("seconds", 0.5)))
            return {"ok": True, "pid": os.getpid()}
        if mode == "hang":  # pragma: no cover - killed by the watchdog
            while True:
                time.sleep(0.05)
        if mode == "alloc":  # pragma: no cover - killed by the watchdog
            hoard = []
            chunk = 8 * 1024 * 1024
            while True:
                hoard.append(os.urandom(chunk))  # touched pages: real RSS
                time.sleep(0.005)
        if mode == "exit":  # pragma: no cover - abrupt death
            os._exit(int(request.get("code", 9)))
        if mode == "flaky":
            # dies abruptly until its marker file exists: one crash, then ok
            marker = request["marker"]
            if os.path.exists(marker):
                return {"ok": True, "recovered": True, "pid": os.getpid()}
            with open(marker, "w") as fh:
                fh.write("crashed once\n")
            os._exit(17)  # pragma: no cover - abrupt death
        if mode == "raise":
            raise RuntimeError(request.get("message", "injected failure"))
        return {"ok": False, "status": 2,
                "error": {"type": "UsageError",
                          "message": f"unknown __test__ mode {mode!r}"}}


def worker_main(conn, init: dict) -> None:
    """Subprocess entry point: serve requests off the pipe until told to stop.

    SIGINT is ignored — a Ctrl-C at the daemon's terminal must drain
    through the supervisor's shutdown path, not kill workers mid-request.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - non-main thread
        pass
    handler = RequestHandler(cache_dir=init.get("cache_dir"),
                             allow_test_ops=bool(init.get("allow_test_ops")))
    try:
        conn.send({"ready": True, "pid": os.getpid()})
    except (OSError, BrokenPipeError):  # pragma: no cover - parent gone
        return
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if not isinstance(request, dict) or request.get("kind") == "shutdown":
            return
        try:
            response = handler.handle(request)
        except BaseException as exc:  # the loop itself must never die
            response = _error_response(exc)
        try:
            conn.send(response)
        except (OSError, BrokenPipeError):  # pragma: no cover - parent gone
            return
