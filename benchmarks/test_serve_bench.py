"""Service throughput, warm-start latency, supervision overhead (BENCH_serve.json).

Three claims, one JSON artifact:

* **Throughput** — round-trips/second through the full stack (unix
  socket -> daemon -> pool -> supervised worker -> back), measured on
  ping (pure transport + dispatch) and on a small ``run`` request
  (transport + warm guest execution).
* **Warm vs cold latency** — the worker keeps instantiated modules warm
  (snapshot/restore per request instead of decode+instantiate), so the
  second request for a module is much cheaper than the first. Both
  latencies are recorded; warm must beat cold.
* **Supervision overhead <= 5%** — the acceptance criterion. The same
  request executed through the same :class:`RequestHandler` code path,
  once in-process (the degraded fallback) and once under full
  supervision (subprocess + pipe + watchdog poll). The workload is
  auto-scaled until the in-process baseline is long enough (~0.7 s) that
  the fixed per-request supervision cost is honestly amortized — the
  claim is about steady-state service traffic, not 1 ms pings.
"""

from __future__ import annotations

import json
import statistics
import time

from repro.serve import ServeClient, ServeConfig, ServeDaemon, WorkerPool
from repro.wasm import encode_module, parse_wat

SPIN_WAT = """
(module
  (func (export "spin") (param i32) (result i32)
    (local i32 i32)
    block
      loop
        local.get 1
        local.get 0
        i32.ge_s
        br_if 1
        local.get 2
        local.get 1
        i32.add
        local.set 2
        local.get 1
        i32.const 1
        i32.add
        local.set 1
        br 0
      end
    end
    local.get 2)
)
"""

#: in-process baseline must run at least this long for the overhead
#: comparison to be about steady state, not fixed dispatch cost
MIN_BASELINE_SECONDS = 0.7

PING_ROUNDS = 200
RUN_ROUNDS = 60
LATENCY_REPEATS = 12
OVERHEAD_REPEATS = 5


def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _spin_request(module_bytes: bytes, n: int) -> dict:
    return {"kind": "run", "module": module_bytes, "entry": "spin",
            "args": [n]}


def test_serve_throughput_and_overhead(results_dir, tmp_path):
    module_bytes = encode_module(parse_wat(SPIN_WAT))

    # -- throughput + latency: the full socket stack -------------------------
    pool = WorkerPool(ServeConfig(workers=2, request_timeout=120.0,
                                  poll_interval=0.005)).start()
    socket_path = tmp_path / "bench.sock"
    daemon = ServeDaemon(socket_path, pool).start()
    import threading
    accept_thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    accept_thread.start()
    client = ServeClient(socket_path)
    try:
        assert client.ping()["ok"]
        start = time.perf_counter()
        for _ in range(PING_ROUNDS):
            client.ping()
        ping_rps = PING_ROUNDS / (time.perf_counter() - start)

        # warm both workers so the run-rate measures steady state
        for _ in range(4):
            assert client.run(module_bytes, "spin", [100])["ok"]
        start = time.perf_counter()
        for _ in range(RUN_ROUNDS):
            response = client.run(module_bytes, "spin", [100])
            assert response["ok"]
        run_rps = RUN_ROUNDS / (time.perf_counter() - start)
    finally:
        daemon.stop()
        accept_thread.join(timeout=10.0)

    # -- warm vs cold latency (one worker: requests pin to one instance) ----
    pool = WorkerPool(ServeConfig(workers=1, request_timeout=120.0,
                                  poll_interval=0.005)).start()
    try:
        cold_samples, warm_samples = [], []
        for round_idx in range(LATENCY_REPEATS):
            # vary the module bytes per round so every round's first
            # request really is cold (a fresh digest, fresh decode and
            # instantiation — not a warm-cache hit from a prior round)
            variant = encode_module(parse_wat(SPIN_WAT.replace(
                "(module",
                f'(module\n  (func (export "tag") (result i32) '
                f'i32.const {round_idx})', 1)))
            request = _spin_request(variant, 100)
            start = time.perf_counter()
            first = pool.submit(dict(request))
            cold_samples.append(time.perf_counter() - start)
            assert first["ok"] and first["warm"] is False
            start = time.perf_counter()
            second = pool.submit(dict(request))
            warm_samples.append(time.perf_counter() - start)
            assert second["ok"] and second["warm"] is True
        cold_ms = 1000 * statistics.median(cold_samples)
        warm_ms = 1000 * statistics.median(warm_samples)
    finally:
        pool.close()

    # -- supervision overhead on an amortizing workload ----------------------
    iterations = 50_000
    in_process = WorkerPool(ServeConfig(workers=0)).start()  # degraded path
    supervised = WorkerPool(ServeConfig(workers=1, request_timeout=300.0,
                                        poll_interval=0.005)).start()
    try:
        while True:
            in_process.submit(_spin_request(module_bytes, iterations))
            baseline = _median_seconds(
                lambda: in_process.submit(_spin_request(module_bytes,
                                                        iterations)), 3)
            if baseline >= MIN_BASELINE_SECONDS or iterations >= 12_800_000:
                break
            iterations *= 2
        baseline = _median_seconds(
            lambda: in_process.submit(_spin_request(module_bytes,
                                                    iterations)),
            OVERHEAD_REPEATS)
        supervised.submit(_spin_request(module_bytes, iterations))  # warm up
        supervised_time = _median_seconds(
            lambda: supervised.submit(_spin_request(module_bytes,
                                                    iterations)),
            OVERHEAD_REPEATS)
    finally:
        in_process.close()
        supervised.close()
    overhead_pct = 100 * (supervised_time - baseline) / baseline

    payload = {
        "ping_requests_per_sec": round(ping_rps, 1),
        "run_requests_per_sec": round(run_rps, 1),
        "ping_rounds": PING_ROUNDS,
        "run_rounds": RUN_ROUNDS,
        "cold_latency_ms": round(cold_ms, 3),
        "warm_latency_ms": round(warm_ms, 3),
        "warm_speedup": round(cold_ms / warm_ms, 2) if warm_ms else None,
        "supervision": {
            "workload_iterations": iterations,
            "in_process_seconds": round(baseline, 4),
            "supervised_seconds": round(supervised_time, 4),
            "overhead_pct": round(overhead_pct, 2),
            "repeats": OVERHEAD_REPEATS,
        },
    }
    path = results_dir / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"ping {ping_rps:,.0f}/s | run {run_rps:,.0f}/s | "
          f"cold {cold_ms:.1f}ms vs warm {warm_ms:.1f}ms | "
          f"supervision overhead {overhead_pct:+.2f}% "
          f"on a {baseline:.2f}s workload [recorded in {path}]")

    assert ping_rps > 50, payload  # the transport is not pathological
    assert warm_ms < cold_ms, payload  # warm-start earns its keep
    # the acceptance criterion: happy-path supervision costs <= 5%
    assert overhead_pct <= 5.0, payload
