"""JSON-lines wire codec for the service socket.

One request line, one response line, connection closed — the simplest
protocol that survives killed peers (a half-written line is a malformed
request, not a wedged connection). Binary fields (module bytes, fuzz
corpus entries) ride as ``{"$bytes": <base64>}`` markers, packed and
unpacked recursively so nested payloads (e.g. a fuzz shard's corpus dict)
need no special casing at call sites.
"""

from __future__ import annotations

import base64
import json

#: Protocol tag sent in every message; receivers refuse anything else.
WIRE_SCHEMA = "repro.serve/1"

#: Upper bound on one message line (64 MiB) — a corrupted length prefix or
#: a hostile client must not balloon the daemon's memory.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class WireError(ValueError):
    """A malformed or oversized wire message."""


def _pack(value):
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"$bytes": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, dict):
        return {str(k): _pack(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_pack(v) for v in value]
    return value


def _unpack(value):
    if isinstance(value, dict):
        if set(value) == {"$bytes"}:
            return base64.b64decode(value["$bytes"])
        return {k: _unpack(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_unpack(v) for v in value]
    return value


def dumps(message: dict) -> bytes:
    """Encode one message as a newline-terminated JSON line."""
    envelope = {"schema": WIRE_SCHEMA}
    envelope.update(_pack(message))
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8") + b"\n"


def loads(line: bytes) -> dict:
    """Decode one wire line, validating the schema tag."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise WireError(f"message of {len(line)} bytes exceeds the "
                        f"{MAX_MESSAGE_BYTES}-byte cap")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WireError(f"malformed wire message: {exc}") from None
    if not isinstance(payload, dict) or payload.get("schema") != WIRE_SCHEMA:
        raise WireError(
            f"not a repro service message (schema "
            f"{payload.get('schema') if isinstance(payload, dict) else None!r},"
            f" expected {WIRE_SCHEMA!r})")
    payload.pop("schema", None)
    return _unpack(payload)


def read_line(fh) -> bytes:
    """Read one bounded line from a socket file object."""
    line = fh.readline(MAX_MESSAGE_BYTES + 1)
    if len(line) > MAX_MESSAGE_BYTES:
        raise WireError("wire message exceeded the size cap")
    return line
