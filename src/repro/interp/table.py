"""Function tables, used by ``call_indirect`` (function pointers, vtables)."""

from __future__ import annotations

from ..wasm.errors import SnapshotError, Trap
from ..wasm.types import Limits


class Table:
    """A table instance mapping indices to function addresses (or None)."""

    def __init__(self, limits: Limits):
        self.limits = limits
        self.entries: list[int | None] = [None] * limits.minimum

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, idx: int) -> int:
        """Resolve a table index to a function address, trapping when invalid."""
        if idx < 0 or idx >= len(self.entries):
            raise Trap(f"undefined element: table index {idx} out of bounds "
                       f"(table size {len(self.entries)})")
        entry = self.entries[idx]
        if entry is None:
            raise Trap(f"uninitialized element at table index {idx}")
        return entry

    def lookup(self, idx: int) -> int | None:
        """Non-trapping variant of :meth:`get` (used by the Wasabi runtime)."""
        if 0 <= idx < len(self.entries):
            return self.entries[idx]
        return None

    def set(self, idx: int, func_addr: int | None) -> None:
        if idx < 0 or idx >= len(self.entries):
            raise Trap(f"table index {idx} out of bounds")
        self.entries[idx] = func_addr

    # -- state capture (repro.interp.snapshot) --------------------------------

    def snapshot_entries(self) -> list[int | None]:
        """A copy of the entries, for state snapshots."""
        return list(self.entries)

    def restore_entries(self, entries: list[int | None]) -> None:
        """Replace the entries from a snapshot (same size required)."""
        if len(entries) != len(self.entries):
            raise SnapshotError(
                f"snapshot table has {len(entries)} entries, live table "
                f"has {len(self.entries)}")
        self.entries[:] = entries
