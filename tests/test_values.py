"""Exact numeric semantics of the interpreter (spec conformance)."""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.interp.values import BINOPS, MASK32, MASK64, UNOPS
from repro.wasm.errors import Trap
from repro.wasm.numeric import to_signed, to_unsigned

u32 = st.integers(min_value=0, max_value=MASK32)
u64 = st.integers(min_value=0, max_value=MASK64)


class TestIntegerArithmetic:
    def test_add_wraps(self):
        assert BINOPS["i32.add"](0xFFFFFFFF, 1) == 0
        assert BINOPS["i64.add"](MASK64, 2) == 1

    def test_sub_wraps(self):
        assert BINOPS["i32.sub"](0, 1) == 0xFFFFFFFF

    def test_mul_wraps(self):
        assert BINOPS["i32.mul"](0x10000, 0x10000) == 0

    def test_div_s_rounds_toward_zero(self):
        assert BINOPS["i32.div_s"](to_unsigned(-7, 32), 2) == to_unsigned(-3, 32)
        assert BINOPS["i32.div_s"](7, to_unsigned(-2, 32)) == to_unsigned(-3, 32)

    def test_div_u(self):
        assert BINOPS["i32.div_u"](to_unsigned(-1, 32), 2) == 0x7FFFFFFF

    def test_div_by_zero_traps(self):
        for op in ["i32.div_s", "i32.div_u", "i32.rem_s", "i32.rem_u",
                   "i64.div_s", "i64.div_u", "i64.rem_s", "i64.rem_u"]:
            with pytest.raises(Trap):
                BINOPS[op](1, 0)

    def test_div_s_overflow_traps(self):
        with pytest.raises(Trap):
            BINOPS["i32.div_s"](0x80000000, MASK32)  # MIN / -1

    def test_rem_s_min_minus_one_is_zero(self):
        # the one case where rem_s does NOT trap while div_s does
        assert BINOPS["i32.rem_s"](0x80000000, MASK32) == 0

    def test_rem_s_sign_follows_dividend(self):
        assert BINOPS["i32.rem_s"](to_unsigned(-7, 32), 3) == to_unsigned(-1, 32)
        assert BINOPS["i32.rem_s"](7, to_unsigned(-3, 32)) == 1

    def test_shifts_mask_count(self):
        assert BINOPS["i32.shl"](1, 33) == 2
        assert BINOPS["i64.shl"](1, 65) == 2

    def test_shr_s_sign_extends(self):
        assert BINOPS["i32.shr_s"](0x80000000, 1) == 0xC0000000

    def test_shr_u_zero_extends(self):
        assert BINOPS["i32.shr_u"](0x80000000, 1) == 0x40000000

    def test_rotl_rotr(self):
        assert BINOPS["i32.rotl"](0x80000001, 1) == 0x00000003
        assert BINOPS["i32.rotr"](0x00000003, 1) == 0x80000001
        assert BINOPS["i64.rotl"](1, 64) == 1

    def test_clz_ctz_popcnt(self):
        assert UNOPS["i32.clz"](0) == 32
        assert UNOPS["i32.clz"](1) == 31
        assert UNOPS["i64.clz"](0) == 64
        assert UNOPS["i32.ctz"](0) == 32
        assert UNOPS["i32.ctz"](8) == 3
        assert UNOPS["i32.popcnt"](0xF0F0F0F0) == 16

    def test_eqz(self):
        assert UNOPS["i32.eqz"](0) == 1
        assert UNOPS["i64.eqz"](5) == 0

    def test_signed_comparisons(self):
        minus_one = to_unsigned(-1, 32)
        assert BINOPS["i32.lt_s"](minus_one, 0) == 1
        assert BINOPS["i32.lt_u"](minus_one, 0) == 0
        assert BINOPS["i32.gt_s"](1, minus_one) == 1

    @given(u32, u32)
    def test_add_matches_reference(self, a, b):
        assert BINOPS["i32.add"](a, b) == (a + b) % 2 ** 32

    @given(u32, st.integers(min_value=1, max_value=MASK32))
    def test_divmod_identity_unsigned(self, a, b):
        q = BINOPS["i32.div_u"](a, b)
        r = BINOPS["i32.rem_u"](a, b)
        assert q * b + r == a and 0 <= r < b

    @given(u64, st.integers(min_value=0, max_value=200))
    def test_rot_roundtrip(self, x, k):
        rotated = BINOPS["i64.rotl"](x, k)
        assert BINOPS["i64.rotr"](rotated, k) == x


class TestFloatSemantics:
    def test_f32_rounding(self):
        # 0.1 is not representable in binary32
        result = BINOPS["f32.add"](0.1, 0.0)
        assert result == struct.unpack("<f", struct.pack("<f", 0.1))[0]

    def test_div_by_zero_gives_infinity(self):
        assert BINOPS["f64.div"](1.0, 0.0) == math.inf
        assert BINOPS["f64.div"](-1.0, 0.0) == -math.inf
        assert math.isnan(BINOPS["f64.div"](0.0, 0.0))

    def test_min_max_nan_propagation(self):
        assert math.isnan(BINOPS["f64.min"](float("nan"), 1.0))
        assert math.isnan(BINOPS["f32.max"](1.0, float("nan")))

    def test_min_of_signed_zeros(self):
        assert math.copysign(1.0, BINOPS["f64.min"](-0.0, 0.0)) == -1.0
        assert math.copysign(1.0, BINOPS["f64.max"](-0.0, 0.0)) == 1.0

    def test_nearest_rounds_half_to_even(self):
        assert UNOPS["f64.nearest"](0.5) == 0.0
        assert UNOPS["f64.nearest"](1.5) == 2.0
        assert UNOPS["f64.nearest"](2.5) == 2.0
        assert UNOPS["f64.nearest"](-0.5) == -0.0

    def test_trunc_preserves_negative_zero(self):
        result = UNOPS["f64.trunc"](-0.25)
        assert result == 0.0 and math.copysign(1.0, result) == -1.0

    def test_sqrt(self):
        assert UNOPS["f64.sqrt"](4.0) == 2.0
        assert math.isnan(UNOPS["f64.sqrt"](-1.0))
        assert math.copysign(1.0, UNOPS["f64.sqrt"](-0.0)) == -1.0

    def test_copysign(self):
        assert BINOPS["f64.copysign"](3.0, -1.0) == -3.0
        assert BINOPS["f64.copysign"](-3.0, 1.0) == 3.0

    def test_comparisons_with_nan(self):
        nan = float("nan")
        assert BINOPS["f64.eq"](nan, nan) == 0
        assert BINOPS["f64.ne"](nan, nan) == 1
        assert BINOPS["f64.lt"](nan, 1.0) == 0

    def test_abs_neg(self):
        assert UNOPS["f32.abs"](-2.5) == 2.5
        assert UNOPS["f64.neg"](1.5) == -1.5


class TestConversions:
    def test_wrap(self):
        assert UNOPS["i32.wrap/i64"](0x1_0000_0001) == 1

    def test_extend(self):
        assert UNOPS["i64.extend_s/i32"](to_unsigned(-1, 32)) == MASK64
        assert UNOPS["i64.extend_u/i32"](to_unsigned(-1, 32)) == MASK32

    def test_trunc_basic(self):
        assert UNOPS["i32.trunc_s/f64"](-3.7) == to_unsigned(-3, 32)
        assert UNOPS["i32.trunc_u/f64"](3.7) == 3

    def test_trunc_nan_traps(self):
        with pytest.raises(Trap):
            UNOPS["i32.trunc_s/f64"](float("nan"))

    def test_trunc_overflow_traps(self):
        with pytest.raises(Trap):
            UNOPS["i32.trunc_s/f64"](2.0 ** 31)
        with pytest.raises(Trap):
            UNOPS["i32.trunc_u/f64"](-1.0)
        # but values that truncate into range are fine
        assert UNOPS["i32.trunc_u/f64"](-0.5) == 0

    def test_convert(self):
        assert UNOPS["f64.convert_s/i32"](to_unsigned(-5, 32)) == -5.0
        assert UNOPS["f64.convert_u/i32"](to_unsigned(-5, 32)) == 4294967291.0
        assert UNOPS["f64.convert_u/i64"](MASK64) == 2.0 ** 64

    def test_reinterpret_roundtrip(self):
        bits = UNOPS["i64.reinterpret/f64"](-2.5)
        assert UNOPS["f64.reinterpret/i64"](bits) == -2.5
        assert UNOPS["i32.reinterpret/f32"](-0.0) == 0x80000000

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_f32_bits_roundtrip(self, x):
        bits = UNOPS["i32.reinterpret/f32"](x)
        assert UNOPS["f32.reinterpret/i32"](bits) == x

    @given(st.integers(min_value=-2 ** 31, max_value=2 ** 31 - 1))
    def test_trunc_of_convert_is_identity(self, value):
        converted = UNOPS["f64.convert_s/i32"](to_unsigned(value, 32))
        assert to_signed(UNOPS["i32.trunc_s/f64"](converted), 32) == value
