"""Evaluation workloads: PolyBench kernels, synthetic binaries, spec corpus."""

from . import polybench
from .spec_corpus import CorpusProgram, corpus, corpus_names
from .synthetic import engine_demo, pdf_toolkit
from .wasi_io import (SAMPLE_FILES, SAMPLE_STDIN, wasi_io_entry,
                      wasi_io_module, wasi_io_names)

__all__ = ["CorpusProgram", "corpus", "corpus_names", "engine_demo",
           "pdf_toolkit", "polybench", "SAMPLE_FILES", "SAMPLE_STDIN",
           "wasi_io_entry", "wasi_io_module", "wasi_io_names"]
