"""Live service observability: cross-process traces, the stats/metrics
scrape surface, the flight recorder in crash bundles, and ``repro top``.

The contracts pinned here:

* a traced request produces **one** trace: client, daemon, and worker
  spans all share the client's trace id and parent-link into one tree,
  and the exported Chrome trace carries all three process names;
* ``stats`` (schema ``repro.serve-stats/1``) and ``metrics`` fold pool
  counters idempotently — two consecutive idle scrapes are identical
  (stats modulo uptime, metrics byte-for-byte);
* the Prometheus text round-trips through :func:`parse_prometheus` with
  per-op histogram series;
* a killed request's ``kind: service`` bundle ships a non-empty
  ``flight.jsonl`` whose tail includes the kill event, loadable via
  :func:`load_crash_bundle` and rendered by ``repro bundle``;
* ``repro top --once/--json`` works against a live daemon, and the
  frame renderer is a pure function of the stats payload;
* the optional ``--metrics-port`` HTTP listener serves ``/metrics`` and
  ``/stats`` on localhost.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import _render_top, main
from repro.interp import load_crash_bundle
from repro.obs import StructuredLogger, Telemetry, parse_prometheus
from repro.serve import STATS_SCHEMA, ServeClient, ServeConfig, ServeDaemon, WorkerPool
from repro.wasm import WorkerKilled, encode_module, parse_wat

ADD_WAT = '(module (func (export "main") (result i32) i32.const 40 i32.const 2 i32.add))'
HANG_WAT = '(module (func (export "forever") loop br 0 end))'


def make_pool(tmp_path, **overrides) -> WorkerPool:
    defaults = dict(workers=1, request_timeout=10.0, poll_interval=0.01,
                    allow_test_ops=True, max_retries=1, breaker_threshold=2,
                    backoff_base=0.01, backoff_cap=0.05,
                    cache_dir=str(tmp_path / "cache"),
                    crash_dir=str(tmp_path / "crashes"))
    defaults.update(overrides)
    return WorkerPool(ServeConfig(**defaults)).start()


@pytest.fixture
def served(tmp_path):
    """A live daemon; yields (socket_path, daemon) and tears down."""
    pool = make_pool(tmp_path)
    socket_path = tmp_path / "serve.sock"
    daemon = ServeDaemon(socket_path, pool).start()
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    yield str(socket_path), daemon
    daemon.stop()
    thread.join(timeout=10.0)


@pytest.fixture(scope="module")
def add_bytes():
    return encode_module(parse_wat(ADD_WAT))


class TestCrossProcessTrace:
    def test_one_trace_id_across_three_processes(self, served, add_bytes):
        socket_path, _ = served
        telemetry = Telemetry()
        client = ServeClient(socket_path, telemetry=telemetry)
        response = client.run(add_bytes, "main")
        assert response["ok"]

        spans = telemetry.tracer.spans
        processes = {span.process for span in spans}
        assert processes == {"client", "daemon", "worker"}
        trace_ids = {span.trace_id for span in spans}
        assert len(trace_ids) == 1 and None not in trace_ids

        by_id = {span.span_id: span for span in spans}
        names = {span.name for span in spans}
        assert {"serve_request", "serve_op", "worker_handle",
                "queue_wait", "supervised_execute", "invoke"} <= names
        # parent links stitch into one tree rooted at the client span
        root = next(s for s in spans if s.name == "serve_request")
        assert root.parent_id is None
        for span in spans:
            if span is root:
                continue
            assert span.parent_id in by_id, (span.name, span.parent_id)
        # the worker's invoke hangs off worker_handle which hangs off serve_op
        handle = next(s for s in spans if s.name == "worker_handle")
        op = next(s for s in spans if s.name == "serve_op")
        assert handle.parent_id == op.span_id
        assert op.parent_id == root.span_id

    def test_ping_stays_untraced_in_worker(self, served):
        socket_path, _ = served
        telemetry = Telemetry()
        client = ServeClient(socket_path, telemetry=telemetry)
        assert client.ping()["ok"]
        # client + daemon span the request; the worker hot path does not
        processes = {span.process for span in telemetry.tracer.spans}
        assert "worker" not in processes
        assert {"client", "daemon"} <= processes

    def test_untraced_client_gets_no_span_payload(self, served, add_bytes):
        socket_path, _ = served
        response = ServeClient(socket_path).run(add_bytes, "main")
        assert response["ok"]
        assert "spans" not in response

    def test_cli_trace_out_is_stitched(self, served, tmp_path, add_bytes,
                                       capsys):
        socket_path, _ = served
        module = tmp_path / "add.wasm"
        module.write_bytes(add_bytes)
        trace_out = tmp_path / "trace.json"
        assert main(["run", str(module), "main", "--serve", socket_path,
                     "--trace-out", str(trace_out)]) == 0
        capsys.readouterr()
        trace = json.loads(trace_out.read_text())
        events = trace["traceEvents"]
        names = {e["args"]["name"] for e in events if e.get("ph") == "M"}
        assert names == {"client", "daemon", "worker"}
        trace_ids = {e["args"].get("trace_id")
                     for e in events if e.get("ph") == "X"}
        assert len(trace_ids) == 1 and None not in trace_ids


class TestScrapeSurface:
    def test_stats_schema_and_daemon_block(self, served, add_bytes):
        socket_path, _ = served
        client = ServeClient(socket_path)
        assert client.run(add_bytes, "main")["ok"]
        payload = client.stats()
        assert payload["ok"]
        assert payload["stats_schema"] == STATS_SCHEMA == "repro.serve-stats/1"
        stats = payload["stats"]
        for key in ("requests_total", "kills", "cache_hits", "queue_depth",
                    "workers_live", "workers_idle", "workers_spawned",
                    "cache_evictions"):
            assert key in stats, key
        daemon_block = payload["daemon"]
        assert daemon_block["pid"] > 0
        assert daemon_block["socket"] == socket_path
        assert daemon_block["uptime_seconds"] > 0
        run_op = daemon_block["ops"]["run"]
        assert run_op["count"] == 1
        assert run_op["outcomes"] == {"ok": 1}
        assert run_op["p95_seconds"] >= run_op["p50_seconds"] >= 0
        assert run_op["mean_seconds"] > 0

    def test_double_scrape_is_idempotent(self, served, add_bytes):
        socket_path, _ = served
        client = ServeClient(socket_path)
        assert client.run(add_bytes, "main")["ok"]
        first = client.stats()
        second = client.stats()
        # scrapes do not count themselves: stats equal modulo uptime
        first["daemon"].pop("uptime_seconds")
        second["daemon"].pop("uptime_seconds")
        assert first == second
        assert client.metrics()["metrics"] == client.metrics()["metrics"]

    def test_prometheus_round_trip(self, served, add_bytes):
        socket_path, _ = served
        client = ServeClient(socket_path)
        for _ in range(3):
            assert client.run(add_bytes, "main")["ok"]
        text = client.metrics()["metrics"]
        samples = parse_prometheus(text)
        assert samples['repro_serve_op_seconds_count{op="run"}'] == 3
        assert samples['repro_serve_op_seconds_sum{op="run"}'] > 0
        assert samples['repro_serve_op_total{op="run",outcome="ok"}'] == 3
        assert samples['repro_serve_op_seconds_bucket{op="run",le="+Inf"}'] == 3
        assert samples["repro_serve_requests_total"] == 3
        assert samples["repro_serve_workers_live"] >= 1
        assert samples["repro_serve_queue_depth"] == 0
        assert samples["repro_serve_degraded"] == 0
        # cumulative buckets are monotonically non-decreasing
        buckets = [(float(k.split('le="')[1].rstrip('"}').replace(
            "+Inf", "inf")), v) for k, v in samples.items()
            if k.startswith('repro_serve_op_seconds_bucket{op="run"')]
        counts = [v for _, v in sorted(buckets)]
        assert counts == sorted(counts)

    def test_metrics_http_listener(self, tmp_path, add_bytes):
        pool = make_pool(tmp_path)
        socket_path = tmp_path / "serve.sock"
        daemon = ServeDaemon(socket_path, pool, metrics_port=0).start()
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            assert daemon.metrics_port not in (None, 0)
            assert ServeClient(socket_path).run(add_bytes, "main")["ok"]
            base = f"http://127.0.0.1:{daemon.metrics_port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as http:
                assert "text/plain" in http.headers["Content-Type"]
                body = http.read().decode()
            assert parse_prometheus(body)["repro_serve_requests_total"] == 1
            with urllib.request.urlopen(f"{base}/stats", timeout=5) as http:
                payload = json.loads(http.read())
            assert payload["stats_schema"] == STATS_SCHEMA
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope", timeout=5)
        finally:
            daemon.stop()
            thread.join(timeout=10.0)


class TestFlightRecorderInBundles:
    def test_killed_bundle_ships_flight_log(self, tmp_path, capsys):
        logger = StructuredLogger("repro.serve", level="debug")
        pool = WorkerPool(ServeConfig(
            workers=1, request_timeout=10.0, poll_interval=0.01,
            max_retries=0, backoff_base=0.01, backoff_cap=0.05,
            crash_dir=str(tmp_path / "crashes")), logger=logger).start()
        hang = encode_module(parse_wat(HANG_WAT))
        try:
            with pytest.raises(WorkerKilled) as info:
                pool.submit({"kind": "run", "module": hang,
                             "entry": "forever", "args": []}, timeout=0.4)
        finally:
            pool.close()
        bundle_dir = info.value.bundle
        assert bundle_dir is not None
        flight_path = Path(bundle_dir) / "flight.jsonl"
        assert flight_path.exists()

        bundle = load_crash_bundle(bundle_dir)
        assert bundle.flight, "flight log must be non-empty"
        events = [entry["event"] for entry in bundle.flight]
        assert "serve_worker_killed" in events
        kill = next(e for e in bundle.flight
                    if e["event"] == "serve_worker_killed")
        assert kill["kill_class"] == "timeout"
        assert kill["level"] == "warning"

        # `repro bundle` renders the flight line
        assert main(["bundle", bundle_dir]) == 0
        out = capsys.readouterr().out
        assert "flight log:" in out
        assert "serve_worker_killed" in out

    def test_bare_pool_records_kills_via_default_logger(self, tmp_path):
        from repro.obs import get_logger
        pool = WorkerPool(ServeConfig(
            workers=1, request_timeout=10.0, poll_interval=0.01,
            max_retries=0, backoff_base=0.01, backoff_cap=0.05)).start()
        assert pool.logger is get_logger("repro.serve")
        hang = encode_module(parse_wat(HANG_WAT))
        try:
            with pytest.raises(WorkerKilled):
                pool.submit({"kind": "run", "module": hang,
                             "entry": "forever", "args": []}, timeout=0.4)
        finally:
            pool.close()
        events = [entry["event"] for entry in pool.logger.tail()]
        assert "serve_worker_killed" in events


class TestTopCLI:
    def test_once_json(self, served, add_bytes, capsys):
        socket_path, _ = served
        assert ServeClient(socket_path).run(add_bytes, "main")["ok"]
        assert main(["top", "--socket", socket_path, "--once", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats_schema"] == STATS_SCHEMA
        assert payload["stats"]["requests_total"] == 1
        assert "run" in payload["daemon"]["ops"]

    def test_once_renders_frame(self, served, add_bytes, capsys):
        socket_path, _ = served
        assert ServeClient(socket_path).run(add_bytes, "main")["ok"]
        assert main(["top", "--socket", socket_path, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro serve" in out
        assert "requests: 1" in out
        assert "workers:" in out and "kills:" in out

    def test_unreachable_daemon_fails_cleanly(self, tmp_path, capsys):
        socket_path = str(tmp_path / "nope.sock")
        status = main(["top", "--socket", socket_path, "--once"])
        assert status == 1
        err = capsys.readouterr().err
        # one clean diagnostic line, not the client's transport retry report
        assert err == f"repro: daemon not running at {socket_path}\n"

    def test_render_top_is_pure(self):
        payload = {
            "stats": {"requests_total": 120, "requests_failed": 2,
                      "requests_retried": 1, "workers_live": 4,
                      "workers_idle": 3, "queue_depth": 1,
                      "worker_restarts": 5, "workers_spawned": 9,
                      "kills": {"timeout": 2, "oom": 1, "crash": 2},
                      "breaker_open": 1, "breaker_trips": 3,
                      "cache_hits": 40, "cache_misses": 10,
                      "cache_evictions": 4, "warm_hits": 7,
                      "warm_misses": 2, "degraded": True},
            "daemon": {"pid": 4242, "socket": "/tmp/x.sock",
                       "uptime_seconds": 3601.0,
                       "ops": {"run": {"count": 100, "mean_seconds": 0.002,
                                       "p50_seconds": 0.001,
                                       "p95_seconds": 0.01,
                                       "outcomes": {"ok": 98, "killed": 2}}}},
        }
        frame = _render_top(payload)
        assert "pid 4242" in frame and "/tmp/x.sock" in frame
        assert "requests: 120" in frame
        assert "timeout=2" in frame and "oom=1" in frame
        assert "DEGRADED" in frame
        assert "killed=2 ok=98" in frame
        # a previous payload adds a req/s delta
        previous = {"stats": {"requests_total": 100}}
        assert "(10.0 req/s)" in _render_top(payload, previous, interval=2.0)
