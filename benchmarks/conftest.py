"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark writes its rendered table/figure to
``benchmarks/results/<name>.txt`` (and prints it), so the paper-vs-measured
comparison in EXPERIMENTS.md can be regenerated from these files.

Set ``REPRO_FULL=1`` to run the full-size sweeps (all 30 PolyBench kernels
in Figure 9, more repetitions); the default configuration finishes in a few
minutes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_run() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_report(results_dir):
    def write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        print(f"[report written to {path}]")

    return write
