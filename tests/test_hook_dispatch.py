"""Call-site-specialized hook dispatch (OP_HOOK fusion).

The pre-decoding engine recognizes the instrumentation idiom
``i32.const f; i32.const i; call <hook>`` and fuses it into a pre-bound
``OP_HOOK`` superinstruction whose dispatcher has the Location and all
per-site static information resolved at instantiation time. These tests
pin down

* the decode-time site recording and pair-fusion interaction,
* that the specialized path produces event streams identical to both
  the generic pre-decoded path and the legacy string-dispatch engine
  (differential corpus + hypothesis),
* the shared no-op dispatcher for un-overridden hooks,
* ``Analysis.used_groups()`` and ``AnalysisSession(groups=None)``
  auto-narrowing, and
* the ``emit_locations=False`` regression (args passed through, not copied).
"""

from hypothesis import given, settings, strategies as st

from repro.analyses.tracer import ExecutionTracer
from repro.core import Analysis, AnalysisSession, analyze
from repro.core.analysis import ALL_GROUPS, Location
from repro.core.instrument import InstrumentationConfig
from repro.core.runtime import WasabiRuntime, _noop_dispatcher
from repro.interp import Machine
from repro.interp.predecode import OP_CALL, OP_CONST, OP_HOOK, cached_decode
from repro.minic import compile_source
from repro.wasm.builder import ModuleBuilder
from repro.wasm.module import BrTable
from repro.wasm.types import I32

from .test_instrument_properties import minic_program

# -- differential corpus ---------------------------------------------------------


def br_table_module():
    """Nested blocks with a br_table: taken entry decides traversed ends."""
    builder = ModuleBuilder()
    fb = builder.function((I32,), (I32,), export="f")
    fb.block()           # outer
    fb.block()           # inner
    fb.get_local(0)
    fb.emit("br_table", br_table=BrTable((0, 1), 1))
    fb.end()
    fb.end()
    fb.i32_const(5)
    fb.finish()
    return builder.build()


I64_SOURCE = """
    memory 1;
    func mix(x: i64) -> i64 { return (x << 3L) + 1L; }
    export func main(a: i32) -> i64 {
        var acc: i64 = i64(a);
        var i: i32;
        for (i = 0; i < 4; i = i + 1) {
            acc = mix(acc) ^ i64(i);
            mem_i64[i & 7] = acc;
            acc = acc + mem_i64[i & 7];
        }
        return acc;
    }
"""

MIXED_SOURCE = """
    memory 1;
    func helper(v: i32) -> i32 { return v * 3 - 1; }
    export func main(a: i32, b: i32) -> i32 {
        var x: i32 = a;
        if (b > 0) { x = helper(x) + b; } else { x = x - helper(b); }
        var i: i32;
        for (i = 0; i < 3; i = i + 1) {
            mem_i32[i] = x;
            x = x + mem_i32[i] + select(b, 1, 2);
        }
        return x;
    }
"""


def stream(module, machine, entry, args, groups=None, config=None):
    tracer = ExecutionTracer()
    session = AnalysisSession(module, tracer, machine=machine,
                              groups=groups, config=config)
    session.invoke(entry, args)
    return tracer.events


ENGINES = {
    "specialized": lambda: Machine(predecode=True, specialize_hooks=True),
    "generic": lambda: Machine(predecode=True, specialize_hooks=False),
    "legacy": lambda: Machine(predecode=False),
}


def assert_streams_identical(module, entry, args, **kwargs):
    streams = {name: stream(module, make(), entry, args, **kwargs)
               for name, make in ENGINES.items()}
    assert streams["specialized"], "corpus program produced no events"
    assert streams["specialized"] == streams["generic"] == streams["legacy"]
    return streams["specialized"]


class TestDifferentialCorpus:
    def test_mixed_program(self):
        module = compile_source(MIXED_SOURCE)
        for args in [(4, 2), (-3, 0), (7, -5)]:
            assert_streams_identical(module, "main", args)

    def test_i64_splitting(self):
        """i64 hook values cross as two i32 halves and must re-join."""
        module = compile_source(I64_SOURCE)
        events = assert_streams_identical(module, "main", (-3,))
        # the re-joined values are signed full-width ints on every path
        assert any(e.kind == "binary" and "i64" in e.payload[0]
                   for e in events)

    def test_br_table_traversed_ends(self):
        module = br_table_module()
        for arg in (0, 1, 2):
            events = assert_streams_identical(module, "f", (arg,))
            assert [e for e in events if e.kind == "br_table"]
            assert [e for e in events if e.kind == "end"]

    def test_memory_size_and_grow(self, memory_module):
        assert_streams_identical(memory_module, "grow", ())
        assert_streams_identical(memory_module, "roundtrip", (2.5,))

    def test_indirect_calls(self):
        module = compile_source("""
            type unop = func(i32) -> i32;
            func inc(x: i32) -> i32 { return x + 1; }
            func dec(x: i32) -> i32 { return x - 1; }
            table [inc, dec];
            export func main(i: i32, v: i32) -> i32 {
                return call_indirect[unop](i & 1, v);
            }
        """)
        for args in [(0, 10), (1, 10)]:
            assert_streams_identical(module, "main", args)


@settings(max_examples=20, deadline=None)
@given(minic_program(), st.integers(min_value=-8, max_value=8),
       st.integers(min_value=-8, max_value=8))
def test_differential_hypothesis(source, a, b):
    """Specialized and generic dispatch agree on random programs."""
    module = compile_source(source)
    try:
        specialized = stream(module, Machine(), "main", (a, b))
    except Exception as exc:
        # traps must reproduce identically on the generic path
        try:
            stream(module, Machine(specialize_hooks=False), "main", (a, b))
        except Exception as generic_exc:
            assert type(generic_exc) is type(exc)
            return
        raise AssertionError("specialized path trapped, generic did not")
    generic = stream(module, Machine(specialize_hooks=False), "main", (a, b))
    assert specialized == generic


# -- fusion / binding internals --------------------------------------------------


class TestFusion:
    def test_decode_records_sites_and_keeps_cache_unfused(self):
        module = compile_source(MIXED_SOURCE)
        tracer = ExecutionTracer()
        session = AnalysisSession(module, tracer, run_start=False)
        instrumented = session.result.module
        func = next(f for f in instrumented.functions if f.body)
        decoded, _ = cached_decode(func, instrumented)
        assert decoded.hook_sites
        # the shared cache holds the unfused stream: sites are still plain
        # calls, preceded by the two un-consumed location constants
        ops = [ins[0] for ins in decoded.code]
        assert OP_HOOK not in ops
        for pc in decoded.hook_sites:
            assert decoded.code[pc][0] == OP_CALL
            if pc >= 2 and decoded.code[pc][2] >= 2:
                assert decoded.code[pc - 1][0] == OP_CONST
                assert decoded.code[pc - 2][0] == OP_CONST

    def test_instance_code_is_fused(self):
        module = compile_source(MIXED_SOURCE)
        tracer = ExecutionTracer()
        session = AnalysisSession(
            module, tracer, run_start=False,
            machine=Machine(predecode=True, specialize_hooks=True))
        fused = [ins for fn in session.instance.functions
                 if getattr(fn, "decoded", None) is not None
                 for ins in fn.decoded.code if ins[0] == OP_HOOK]
        assert fused
        # every fused site skips the whole const/const/call triple
        assert all(ins[3] == 3 for ins in fused)

    def test_specialization_can_be_disabled(self):
        module = compile_source(MIXED_SOURCE)
        tracer = ExecutionTracer()
        session = AnalysisSession(module, tracer, run_start=False,
                                  machine=Machine(specialize_hooks=False))
        assert not [ins for fn in session.instance.functions
                    if getattr(fn, "decoded", None) is not None
                    for ins in fn.decoded.code if ins[0] == OP_HOOK]


class TestNoopSharing:
    def test_unoverridden_hooks_share_noop(self):
        class LoadsOnly(Analysis):
            def __init__(self):
                self.loads = []

            def load(self, loc, op, memarg, value):
                self.loads.append((loc, op, value))

        module = compile_source(MIXED_SOURCE)
        session = AnalysisSession(module, LoadsOnly(), groups=ALL_GROUPS,
                                  run_start=False)
        hosts = session.runtime.host_functions()
        live = {name: h for name, h in hosts.items() if name.startswith("load")}
        dead = {name: h for name, h in hosts.items()
                if not name.startswith(("load", "br_table"))}
        assert live and dead
        assert all(h.fn is _noop_dispatcher for h in dead.values())
        assert all(h.fn is not _noop_dispatcher for h in live.values())
        # site factories of dead hooks hand the same no-op to the engine
        assert all(h.site_factory(0, 0) is _noop_dispatcher
                   for h in dead.values())
        assert all(h.site_factory(0, 1) is not _noop_dispatcher
                   for h in live.values())

    def test_br_table_live_when_only_end_overridden(self):
        """br_table dispatch fires traversed-end events, so it must stay
        live whenever `end` is overridden even if `br_table` is not."""

        class EndsOnly(Analysis):
            def __init__(self):
                self.ends = []

            def end(self, loc, kind, begin):
                self.ends.append((loc, kind, begin))

        analysis = EndsOnly()
        session = AnalysisSession(br_table_module(), analysis,
                                  groups=ALL_GROUPS, run_start=False)
        hosts = session.runtime.host_functions()
        br_table_hosts = [h for name, h in hosts.items()
                          if name.startswith("br_table")]
        assert br_table_hosts
        assert all(h.fn is not _noop_dispatcher for h in br_table_hosts)
        session.invoke("f", (1,))
        assert analysis.ends  # traversed ends still observed


# -- used_groups() and session auto-narrowing ------------------------------------


class TestUsedGroups:
    def test_load_store_analysis(self):
        class LoadStore(Analysis):
            def load(self, loc, op, memarg, value): pass
            def store(self, loc, op, memarg, value): pass

        assert LoadStore().used_groups() == frozenset({"load", "store"})

    def test_empty_analysis(self):
        assert Analysis().used_groups() == frozenset()

    def test_session_auto_narrows_instrumentation(self):
        class LoadStore(Analysis):
            def __init__(self):
                self.events = []

            def load(self, loc, op, memarg, value):
                self.events.append(("load", loc, op, memarg.addr, value))

            def store(self, loc, op, memarg, value):
                self.events.append(("store", loc, op, memarg.addr, value))

        module = compile_source(MIXED_SOURCE)
        narrow = LoadStore()
        narrow_session = AnalysisSession(module, narrow, groups=None,
                                         run_start=False)
        full = LoadStore()
        full_session = AnalysisSession(module, full, groups=ALL_GROUPS,
                                       run_start=False)
        assert narrow_session.groups == frozenset({"load", "store"})
        assert 0 < narrow_session.result.hook_count < full_session.result.hook_count
        narrow_session.invoke("main", (4, 2))
        full_session.invoke("main", (4, 2))
        # narrowing never changes what the analysis observes
        assert narrow.events == full.events
        assert narrow.events


# -- emit_locations=False regression ---------------------------------------------


class TestNoLocations:
    def test_streams_identical_without_locations(self):
        """Regression: the no-location path must pass args through (it used
        to copy), and bare hook calls bind via the skip-1 OP_HOOK form.

        Only location-independent hook groups work without locations (the
        others key their static info by location), on every engine.
        """
        module = compile_source(MIXED_SOURCE)
        config = InstrumentationConfig(emit_locations=False)
        groups = frozenset({"const", "drop", "select", "unary", "binary",
                            "load", "store", "if", "begin", "return"})
        events = assert_streams_identical(module, "main", (4, 2),
                                          config=config, groups=groups)
        assert all(e.location == Location(-1, -1) for e in events)

    def test_values_survive_without_locations(self):
        recorded = []

        class Consts(Analysis):
            def const_(self, loc, value):
                recorded.append(value)

        module = compile_source("export func main() -> i32 { return 41 + 1; }")
        analyze(module, Consts(), entry="main",
                config=InstrumentationConfig(emit_locations=False))
        assert 41 in recorded and 1 in recorded


def test_noop_dispatcher_identity_is_shared_across_specs():
    module = compile_source(MIXED_SOURCE)
    runtime = WasabiRuntime(
        AnalysisSession(module, Analysis(), groups=ALL_GROUPS,
                        run_start=False).result,
        Analysis())
    dispatchers = {name: h.fn for name, h in runtime.host_functions().items()}
    assert dispatchers
    assert set(dispatchers.values()) == {_noop_dispatcher}
