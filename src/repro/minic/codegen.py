"""MiniC code generator: checked AST → WebAssembly module.

Lowers structured statements onto WebAssembly's structured control flow
(``while``/``for`` become block+loop with ``br_if``/``br``, ``&&``/``||``
short-circuit via ``if`` blocks), memory views onto typed loads/stores with
shift-scaled element indices, and intrinsics onto the corresponding
instructions. The generated code deliberately exercises the full breadth of
the instruction set Wasabi instruments (drops from expression statements,
selects, br_table is available through workloads, i64 arithmetic, …).
"""

from __future__ import annotations

from ..wasm.builder import FunctionBuilder, ModuleBuilder
from ..wasm.module import Module
from ..wasm.types import F32, F64, I32, I64, FuncType, ValType
from . import ast
from .errors import MiniCError
from .parser import parse
from .typecheck import CheckedProgram, check

_BIN_OPS_INT = {
    "+": "add", "-": "sub", "*": "mul", "/": "div_s", "%": "rem_s",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr_s",
    "==": "eq", "!=": "ne", "<": "lt_s", "<=": "le_s", ">": "gt_s",
    ">=": "ge_s",
}
_BIN_OPS_FLOAT = {
    "+": "add", "-": "sub", "*": "mul", "/": "div",
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}

_MEM_LOAD = {"i32": "i32.load", "i64": "i64.load", "f32": "f32.load",
             "f64": "f64.load", "u8": "i32.load8_u", "u16": "i32.load16_u"}
_MEM_STORE = {"i32": "i32.store", "i64": "i64.store", "f32": "f32.store",
              "f64": "f64.store", "u8": "i32.store8", "u16": "i32.store16"}
_MEM_SHIFT = {"i32": 2, "i64": 3, "f32": 2, "f64": 3, "u8": 0, "u16": 1}

_CAST_OPS: dict[tuple[ValType, ValType], str | None] = {
    (I32, I32): None, (I64, I64): None, (F32, F32): None, (F64, F64): None,
    (I32, I64): "i64.extend_s/i32", (I64, I32): "i32.wrap/i64",
    (I32, F32): "f32.convert_s/i32", (I32, F64): "f64.convert_s/i32",
    (I64, F32): "f32.convert_s/i64", (I64, F64): "f64.convert_s/i64",
    (F32, I32): "i32.trunc_s/f32", (F64, I32): "i32.trunc_s/f64",
    (F32, I64): "i64.trunc_s/f32", (F64, I64): "i64.trunc_s/f64",
    (F32, F64): "f64.promote/f32", (F64, F32): "f32.demote/f64",
}


class _LoopContext:
    __slots__ = ("break_level", "continue_level")

    def __init__(self, break_level: int, continue_level: int):
        self.break_level = break_level
        self.continue_level = continue_level


class CodeGenerator:
    def __init__(self, checked: CheckedProgram, module_name: str | None = None):
        self.checked = checked
        self.builder = ModuleBuilder(module_name)
        self.func_idx: dict[str, int] = {}
        self.fb: FunctionBuilder | None = None
        self.depth = 0
        self.loops: list[_LoopContext] = []

    # -- module assembly --------------------------------------------------------

    def generate(self) -> Module:
        program = self.checked.program
        for func in program.functions:
            if func.imported:
                sig = self.checked.functions[func.name]
                functype = FuncType(sig.params, _results(sig.result))
                self.func_idx[func.name] = self.builder.import_function(
                    func.import_module, func.name, functype)
        pages = program.memory.pages if program.memory else 1
        self.builder.add_memory(pages, export="memory")
        for decl in program.globals:
            init = decl.init.value
            if decl.valtype in (F32, F64):
                init = float(init)
            self.builder.add_global(decl.valtype, mutable=True, init=init,
                                    export=decl.name if decl.exported else None)
        defined = [f for f in program.functions if not f.imported]
        # reserve indices first so calls between functions resolve
        builders: list[tuple[ast.FuncDecl, FunctionBuilder]] = []
        for func in defined:
            sig = self.checked.functions[func.name]
            fb = self.builder.function(sig.params, _results(sig.result),
                                       name=func.name,
                                       export=func.name if func.exported else None)
            self.func_idx[func.name] = fb.func_idx
            builders.append((func, fb))
        if program.table is not None:
            entries = [self.func_idx[name] for name in program.table.entries]
            self.builder.add_table(len(entries), len(entries))
            self.builder.add_element(0, entries)
        for func, fb in builders:
            self._gen_function(func, fb)
        if program.start is not None:
            self.builder.set_start(self.func_idx[program.start])
        return self.builder.build()

    # -- functions ----------------------------------------------------------------

    def _gen_function(self, func: ast.FuncDecl, fb: FunctionBuilder) -> None:
        self.fb = fb
        self.depth = 0
        self.loops = []
        slots = self.checked.local_slots[func.name]
        for valtype in slots[len(func.params):]:
            fb.add_local(valtype)
        for stmt in func.body:
            self._gen_stmt(stmt)
        if func.result is not None and not isinstance(func.body[-1], ast.Return):
            # the type checker proved control cannot reach here (e.g. both
            # arms of a final if/else return); tell the validator so
            fb.emit("unreachable")
        fb.finish()

    # -- statements --------------------------------------------------------------------

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        fb = self.fb
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._gen_expr(stmt.init)
                fb.set_local(stmt.slot)
        elif isinstance(stmt, ast.Assign):
            target = stmt.target
            if isinstance(target, ast.Name):
                self._gen_expr(stmt.value)
                if target.kind == "local":
                    fb.set_local(target.slot)
                else:
                    fb.set_global(target.slot)
            else:  # memory store
                self._gen_mem_address(target)
                self._gen_expr(stmt.value)
                fb.store(_MEM_STORE[target.view])
        elif isinstance(stmt, ast.If):
            self._gen_expr(stmt.condition)
            fb.if_()
            self.depth += 1
            for inner in stmt.then_body:
                self._gen_stmt(inner)
            if stmt.else_body:
                fb.else_()
                for inner in stmt.else_body:
                    self._gen_stmt(inner)
            fb.end()
            self.depth -= 1
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._gen_expr(stmt.value)
            fb.emit("return")
        elif isinstance(stmt, ast.Break):
            if not self.loops:
                raise MiniCError("break outside loop", stmt.line)
            fb.br(self.depth - self.loops[-1].break_level)
        elif isinstance(stmt, ast.Continue):
            if not self.loops:
                raise MiniCError("continue outside loop", stmt.line)
            fb.br(self.depth - self.loops[-1].continue_level)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(stmt.expr)
            if stmt.expr.type is not None:
                fb.emit("drop")
        elif isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self._gen_stmt(inner)
        else:  # pragma: no cover
            raise MiniCError(f"cannot generate {type(stmt).__name__}", stmt.line)

    def _gen_while(self, stmt: ast.While) -> None:
        fb = self.fb
        fb.block()
        self.depth += 1
        break_level = self.depth
        fb.loop()
        self.depth += 1
        continue_level = self.depth
        self.loops.append(_LoopContext(break_level, continue_level))
        self._gen_expr(stmt.condition)
        fb.emit("i32.eqz")
        fb.br_if(self.depth - break_level)
        for inner in stmt.body:
            self._gen_stmt(inner)
        fb.br(self.depth - continue_level)
        fb.end()
        self.depth -= 1
        fb.end()
        self.depth -= 1
        self.loops.pop()

    def _gen_for(self, stmt: ast.For) -> None:
        fb = self.fb
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        fb.block()
        self.depth += 1
        break_level = self.depth
        fb.loop()
        self.depth += 1
        loop_level = self.depth
        if stmt.condition is not None:
            self._gen_expr(stmt.condition)
            fb.emit("i32.eqz")
            fb.br_if(self.depth - break_level)
        fb.block()
        self.depth += 1
        continue_level = self.depth
        self.loops.append(_LoopContext(break_level, continue_level))
        for inner in stmt.body:
            self._gen_stmt(inner)
        fb.end()
        self.depth -= 1
        self.loops.pop()
        if stmt.step is not None:
            self._gen_stmt(stmt.step)
        fb.br(self.depth - loop_level)
        fb.end()
        self.depth -= 1
        fb.end()
        self.depth -= 1

    # -- expressions ------------------------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr) -> None:
        fb = self.fb
        if isinstance(expr, ast.IntLiteral):
            self._gen_literal(expr.type, expr.value)
        elif isinstance(expr, ast.FloatLiteral):
            self._gen_literal(expr.type, expr.value)
        elif isinstance(expr, ast.Name):
            if expr.kind == "local":
                fb.get_local(expr.slot)
            else:
                fb.get_global(expr.slot)
        elif isinstance(expr, ast.Unary):
            self._gen_unary(expr)
        elif isinstance(expr, ast.Binary):
            self._gen_binary(expr)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                self._gen_expr(arg)
            fb.call(self.func_idx[expr.func])
        elif isinstance(expr, ast.IndirectCall):
            for arg in expr.args:
                self._gen_expr(arg)
            self._gen_expr(expr.index)
            typedecl = expr.typedecl
            functype = FuncType(tuple(typedecl.params), _results(typedecl.result))
            fb.call_indirect(self.builder.module.add_type(functype))
        elif isinstance(expr, ast.MemAccess):
            self._gen_mem_address(expr)
            fb.load(_MEM_LOAD[expr.view])
        elif isinstance(expr, ast.Cast):
            self._gen_expr(expr.operand)
            op = _CAST_OPS[(expr.operand.type, expr.target)]
            if op is not None:
                fb.emit(op)
        elif isinstance(expr, ast.Select):
            self._gen_expr(expr.if_true)
            self._gen_expr(expr.if_false)
            self._gen_expr(expr.condition)
            fb.emit("select")
        elif isinstance(expr, ast.Builtin):
            self._gen_builtin(expr)
        else:  # pragma: no cover
            raise MiniCError(f"cannot generate {type(expr).__name__}", expr.line)

    def _gen_literal(self, valtype: ValType, value: int | float) -> None:
        fb = self.fb
        if valtype is I32:
            fb.i32_const(int(value))
        elif valtype is I64:
            fb.i64_const(int(value))
        elif valtype is F32:
            fb.f32_const(float(value))
        else:
            fb.f64_const(float(value))

    def _gen_unary(self, expr: ast.Unary) -> None:
        fb = self.fb
        operand_type = expr.operand.type
        prefix = operand_type.value
        if expr.op == "-":
            if operand_type in (F32, F64):
                self._gen_expr(expr.operand)
                fb.emit(f"{prefix}.neg")
            else:
                self._gen_literal(operand_type, 0)
                self._gen_expr(expr.operand)
                fb.emit(f"{prefix}.sub")
        elif expr.op == "!":
            self._gen_expr(expr.operand)
            fb.emit(f"{prefix}.eqz")
        elif expr.op == "~":
            self._gen_expr(expr.operand)
            self._gen_literal(operand_type, -1)
            fb.emit(f"{prefix}.xor")

    def _gen_binary(self, expr: ast.Binary) -> None:
        fb = self.fb
        if expr.op == "&&":
            # a && b  ==>  a ? (b != 0) : 0
            self._gen_expr(expr.left)
            fb.if_(I32)
            self._gen_expr(expr.right)
            fb.i32_const(0)
            fb.emit("i32.ne")
            fb.else_()
            fb.i32_const(0)
            fb.end()
            return
        if expr.op == "||":
            self._gen_expr(expr.left)
            fb.if_(I32)
            fb.i32_const(1)
            fb.else_()
            self._gen_expr(expr.right)
            fb.i32_const(0)
            fb.emit("i32.ne")
            fb.end()
            return
        self._gen_expr(expr.left)
        self._gen_expr(expr.right)
        operand_type = expr.left.type
        prefix = operand_type.value
        table = _BIN_OPS_FLOAT if operand_type in (F32, F64) else _BIN_OPS_INT
        try:
            fb.emit(f"{prefix}.{table[expr.op]}")
        except KeyError:  # pragma: no cover - typechecker rejects these
            raise MiniCError(f"operator {expr.op} unsupported for {prefix}",
                             expr.line) from None

    def _gen_mem_address(self, access: ast.MemAccess) -> None:
        """Push the byte address of ``mem_T[index]``: ``index << log2(width)``."""
        fb = self.fb
        self._gen_expr(access.index)
        shift = _MEM_SHIFT[access.view]
        if shift:
            fb.i32_const(shift)
            fb.emit("i32.shl")

    def _gen_builtin(self, expr: ast.Builtin) -> None:
        fb = self.fb
        name = expr.name
        for arg in expr.args:
            self._gen_expr(arg)
        if name == "memory_size":
            fb.emit("memory.size")
        elif name == "memory_grow":
            fb.emit("memory.grow")
        elif name in ("nop", "unreachable"):
            fb.emit(name)
        elif name == "neg":
            fb.emit(f"{expr.args[0].type.value}.neg")
        else:
            fb.emit(f"{expr.args[0].type.value}.{name}")


def _results(result: ValType | None) -> tuple[ValType, ...]:
    return () if result is None else (result,)


def compile_program(checked: CheckedProgram, name: str | None = None) -> Module:
    """Generate a WebAssembly module from a checked program."""
    return CodeGenerator(checked, name).generate()


def compile_source(source: str, name: str | None = None) -> Module:
    """Compile MiniC source text all the way to a WebAssembly module."""
    return compile_program(check(parse(source)), name)
